// Property sweep of the prefetcher-streamed path: every operation
// (including merge) over sizes spanning the local-store boundary must
// match the host reference exactly, on both EIS configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "baseline/scalar_baseline.h"
#include "core/processor.h"
#include "common/random.h"
#include "core/workload.h"
#include "prefetch/streaming.h"

namespace dba {
namespace {

using Param = std::tuple<ProcessorKind, SetOp, uint32_t>;

class StreamingPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(StreamingPropertyTest, MatchesReference) {
  const auto [kind, op, size] = GetParam();
  auto processor = Processor::Create(kind);
  ASSERT_TRUE(processor.ok());

  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
  if (op == SetOp::kMerge) {
    Random rng(size);
    a.resize(size);
    b.resize(size * 2 / 3 + 1);
    for (auto& v : a) v = rng.Next32() % (size * 8 + 16);
    for (auto& v : b) v = rng.Next32() % (size * 8 + 16);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
  } else {
    auto pair = GenerateSetPair(size, size * 2 / 3 + 1, 0.4, size + 5);
    ASSERT_TRUE(pair.ok());
    a = std::move(pair->a);
    b = std::move(pair->b);
  }

  prefetch::StreamingSetOperation streaming(processor->get(),
                                            prefetch::DmaConfig{});
  auto run = streaming.Run(op, a, b);
  ASSERT_TRUE(run.ok()) << run.status();

  std::vector<uint32_t> expected;
  switch (op) {
    case SetOp::kIntersect:
      expected = baseline::ScalarIntersect(a, b);
      break;
    case SetOp::kUnion:
      expected = baseline::ScalarUnion(a, b);
      break;
    case SetOp::kDifference:
      expected = baseline::ScalarDifference(a, b);
      break;
    case SetOp::kMerge:
      expected.resize(a.size() + b.size());
      std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
      break;
  }
  EXPECT_EQ(run->result, expected);
  EXPECT_GT(run->total_cycles, 0u);
  EXPECT_GE(run->total_cycles,
            std::max(run->compute_cycles, run->dma_cycles) / run->chunks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamingPropertyTest,
    ::testing::Combine(
        ::testing::Values(ProcessorKind::kDba1LsuEis,
                          ProcessorKind::kDba2LsuEis),
        ::testing::Values(SetOp::kIntersect, SetOp::kUnion,
                          SetOp::kDifference, SetOp::kMerge),
        // Below, at, and well beyond the local-store capacity.
        ::testing::Values(500u, 8000u, 9000u, 40000u)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return std::string(
                 hwmodel::ConfigKindName(std::get<0>(param_info.param))) +
             "_" + std::string(eis::SopModeName(std::get<1>(param_info.param))) +
             "_n" + std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace dba
