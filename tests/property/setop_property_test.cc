// Property sweep: every (configuration x operation x selectivity x size
// x partial-loading) combination must produce exactly the reference
// result, and basic metric invariants must hold.

#include <gtest/gtest.h>

#include <tuple>

#include "baseline/scalar_baseline.h"
#include "core/processor.h"
#include "core/workload.h"

namespace dba {
namespace {

using Param = std::tuple<ProcessorKind, SetOp, double, uint32_t, bool>;

class SetOpPropertyTest : public ::testing::TestWithParam<Param> {};

std::vector<uint32_t> Reference(SetOp op, const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  switch (op) {
    case SetOp::kIntersect:
      return baseline::ScalarIntersect(a, b);
    case SetOp::kUnion:
      return baseline::ScalarUnion(a, b);
    case SetOp::kDifference:
      return baseline::ScalarDifference(a, b);
    default:
      return {};
  }
}

TEST_P(SetOpPropertyTest, MatchesReference) {
  const auto [kind, op, selectivity, size, partial] = GetParam();
  ProcessorOptions options;
  options.partial_loading = partial;
  auto processor = Processor::Create(kind, options);
  ASSERT_TRUE(processor.ok()) << processor.status();

  // Also exercise asymmetric sizes: |B| = 60% of |A|.
  const auto size_b = static_cast<uint32_t>(size * 6 / 10);
  auto pair = GenerateSetPair(size, std::max(1u, size_b), selectivity,
                              /*seed=*/size * 31 + 7);
  ASSERT_TRUE(pair.ok());

  auto run = (*processor)->RunSetOperation(op, pair->a, pair->b);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result, Reference(op, pair->a, pair->b));

  // Metric invariants.
  EXPECT_GT(run->metrics.cycles, 0u);
  EXPECT_GT(run->metrics.seconds, 0.0);
  EXPECT_GT(run->metrics.throughput_meps, 0.0);
  EXPECT_GT(run->metrics.energy_nj_per_element, 0.0);
  EXPECT_EQ(run->metrics.stats.cycles, run->metrics.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetOpPropertyTest,
    ::testing::Combine(
        ::testing::Values(ProcessorKind::kDba1Lsu,
                          ProcessorKind::kDba1LsuEis,
                          ProcessorKind::kDba2LsuEis),
        ::testing::Values(SetOp::kIntersect, SetOp::kUnion,
                          SetOp::kDifference),
        ::testing::Values(0.0, 0.25, 0.5, 1.0),
        ::testing::Values(64u, 1000u, 5000u),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name(
          hwmodel::ConfigKindName(std::get<0>(param_info.param)));
      name += '_';
      name += eis::SopModeName(std::get<1>(param_info.param));
      name += "_sel";
      name += std::to_string(
          static_cast<int>(std::get<2>(param_info.param) * 100));
      name += "_n";
      name += std::to_string(std::get<3>(param_info.param));
      name += std::get<4>(param_info.param) ? "_partial" : "_whole";
      return name;
    });

// Dedicated 108Mini sweep (slow scalar core, smaller sizes).
class MiniSetOpPropertyTest
    : public ::testing::TestWithParam<std::tuple<SetOp, double>> {};

TEST_P(MiniSetOpPropertyTest, MatchesReference) {
  const auto [op, selectivity] = GetParam();
  auto processor = Processor::Create(ProcessorKind::k108Mini);
  ASSERT_TRUE(processor.ok());
  auto pair = GenerateSetPair(800, 800, selectivity, 13);
  ASSERT_TRUE(pair.ok());
  auto run = (*processor)->RunSetOperation(op, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result, Reference(op, pair->a, pair->b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MiniSetOpPropertyTest,
    ::testing::Combine(::testing::Values(SetOp::kIntersect, SetOp::kUnion,
                                         SetOp::kDifference),
                       ::testing::Values(0.0, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<SetOp, double>>& param_info) {
      return std::string(eis::SopModeName(std::get<0>(param_info.param))) +
             "_sel" + std::to_string(
                          static_cast<int>(std::get<1>(param_info.param) * 100));
    });

// Workload-generator properties.
class WorkloadPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(WorkloadPropertyTest, SelectivityIsExact) {
  const auto [selectivity, size] = GetParam();
  auto pair = GenerateSetPair(size, size, selectivity, 1234);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->a.size(), size);
  EXPECT_EQ(pair->b.size(), size);
  // Strictly increasing.
  for (size_t i = 1; i < pair->a.size(); ++i) {
    ASSERT_LT(pair->a[i - 1], pair->a[i]);
  }
  for (size_t i = 1; i < pair->b.size(); ++i) {
    ASSERT_LT(pair->b[i - 1], pair->b[i]);
  }
  const auto expected =
      static_cast<uint32_t>(selectivity * static_cast<double>(size) + 0.5);
  EXPECT_EQ(baseline::ScalarIntersect(pair->a, pair->b).size(), expected);
  EXPECT_EQ(pair->common, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.33, 0.5, 0.9, 1.0),
                       ::testing::Values(1u, 10u, 1000u, 5000u)),
    [](const ::testing::TestParamInfo<std::tuple<double, uint32_t>>&
           param_info) {
      return "sel" + std::to_string(
                         static_cast<int>(std::get<0>(param_info.param) * 100)) +
             "_n" + std::to_string(std::get<1>(param_info.param));
    });

TEST(WorkloadTest, RejectsBadSelectivity) {
  EXPECT_FALSE(GenerateSetPair(10, 10, -0.1, 1).ok());
  EXPECT_FALSE(GenerateSetPair(10, 10, 1.5, 1).ok());
}

TEST(WorkloadTest, DifferentSeedsDifferentSets) {
  auto first = GenerateSetPair(100, 100, 0.5, 1);
  auto second = GenerateSetPair(100, 100, 0.5, 2);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->a, second->a);
}

TEST(WorkloadTest, SameSeedSameSets) {
  auto first = GenerateSetPair(100, 100, 0.5, 42);
  auto second = GenerateSetPair(100, 100, 0.5, 42);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->a, second->a);
  EXPECT_EQ(first->b, second->b);
}

}  // namespace
}  // namespace dba
