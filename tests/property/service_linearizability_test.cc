// Linearizability and determinism properties of the QueryService
// (ctest label `service`).
//
// 1. SeededSweep: 1000 seeded trials. Each trial generates an open-loop
//    workload (queries, direct set ops, column mutations), applies the
//    mutations at drain boundaries, submits everything in between from
//    several barrier-started threads, and requires every response to be
//    byte-identical to a single-threaded replay of the same seed
//    through a plain QueryEngine. Dedup and cache hits are exercised
//    naturally by the pool-drawn predicates and must be invisible in
//    the values.
// 2. ConcurrentMutationLinearizes: queries racing one UpdateColumn must
//    each observe either the full pre-update or the full post-update
//    table state -- never a mix, never a stale cache entry.
// 3. ReplayDeterminism: the complete response transcript of a seed is
//    identical at board host_threads 1, 2, and 8.

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/predicate.h"
#include "query/table.h"
#include "service/query_service.h"
#include "service/service_clock.h"
#include "shared/service_test_util.h"
#include "system/board.h"

namespace dba::service {
namespace {

constexpr uint32_t kRows = 256;

std::unique_ptr<system::Board> MakeBoard(int num_cores, int host_threads) {
  system::BoardConfig config;
  config.num_cores = num_cores;
  config.host_threads = host_threads;
  auto board = system::Board::Create(config);
  EXPECT_TRUE(board.ok()) << board.status();
  return *std::move(board);
}

ServiceRequest ToRequest(
    const test::WorkloadAction& action,
    const std::vector<std::shared_ptr<const query::Predicate>>& pool) {
  ServiceRequest request;
  request.tenant = action.tenant;
  request.priority = action.priority;
  if (action.kind == test::WorkloadAction::Kind::kDirect) {
    request.op = action.op;
    request.a = action.a;
    request.b = action.b;
  } else {
    request.table = "orders";
    request.predicate = pool[action.predicate_index];
  }
  return request;
}

/// Runs one seeded trial: the service (with `submit_threads` concurrent
/// submitters) must reproduce the serial replay byte for byte.
void RunTrial(uint64_t seed, int submit_threads, int host_threads) {
  test::WorkloadOptions options;
  options.actions = 24;
  options.rows = kRows;
  const std::vector<test::WorkloadAction> actions =
      test::MakeWorkload(seed, options);
  const auto pool = test::MakePredicatePool(options.predicate_pool);
  const uint64_t table_seed = seed ^ 0x9E3779B97F4A7C15ull;

  auto board = MakeBoard(2, host_threads);
  ServiceConfig config;
  config.board = board.get();
  config.queue_capacity = actions.size() + 8;
  auto service_or = QueryService::Create(config);
  ASSERT_TRUE(service_or.ok()) << service_or.status();
  auto service = *std::move(service_or);
  ASSERT_TRUE(service
                  ->RegisterTable(std::make_unique<query::Table>(
                      test::MakeServiceTable("orders", kRows, table_seed)))
                  .ok());
  test::SerialReference reference("orders", kRows, table_seed);

  size_t i = 0;
  while (i < actions.size()) {
    if (actions[i].kind == test::WorkloadAction::Kind::kUpdate) {
      // Mutations land at drain boundaries: the queue is empty, so the
      // serial replay and the service agree on which queries see them.
      const auto values = test::MakeColumnValues(actions[i].column, kRows,
                                                 actions[i].update_seed);
      ASSERT_TRUE(
          service->UpdateColumn("orders", actions[i].column, values).ok());
      ASSERT_TRUE(reference.Update(actions[i].column, values).ok());
      ++i;
      continue;
    }
    size_t j = i;
    while (j < actions.size() &&
           actions[j].kind != test::WorkloadAction::Kind::kUpdate) {
      ++j;
    }
    // Serial expectations for the segment, in stream order.
    std::vector<std::vector<uint32_t>> expected(j - i);
    for (size_t k = i; k < j; ++k) {
      const test::WorkloadAction& action = actions[k];
      auto result = action.kind == test::WorkloadAction::Kind::kPredicate
                        ? reference.Select(*pool[action.predicate_index])
                        : reference.Direct(action.op, action.a, action.b);
      ASSERT_TRUE(result.ok()) << result.status();
      expected[k - i] = *std::move(result);
    }
    // Concurrent submission: threads start together at the barrier and
    // interleave however the OS schedules them.
    std::vector<std::future<ServiceResponse>> futures(j - i);
    const int threads = std::min<int>(submit_threads,
                                      static_cast<int>(j - i));
    test::Barrier barrier(threads);
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      submitters.emplace_back([&, t] {
        barrier.ArriveAndWait();
        for (size_t k = i + static_cast<size_t>(t); k < j;
             k += static_cast<size_t>(threads)) {
          futures[k - i] = service->Submit(ToRequest(actions[k], pool));
        }
      });
    }
    for (std::thread& thread : submitters) thread.join();
    service->Drain();
    for (size_t k = i; k < j; ++k) {
      const ServiceResponse response = futures[k - i].get();
      ASSERT_TRUE(response.status.ok())
          << "seed " << seed << " action " << k << ": " << response.status;
      EXPECT_EQ(response.values, expected[k - i])
          << "seed " << seed << " action " << k << " (dedup="
          << response.deduplicated << " cache_hit=" << response.cache_hit
          << ")";
    }
    i = j;
  }
}

/// Board host threads for the sweep: default 2, overridable so the CI
/// flake detector can rerun the identical suite at 1, 2, and 8 and diff
/// the outcomes.
int SweepHostThreads() {
  const char* env = std::getenv("DBA_SERVICE_HOST_THREADS");
  if (env == nullptr) return 2;
  const int threads = std::atoi(env);
  return threads > 0 ? threads : 2;
}

TEST(ServiceLinearizabilityTest, SeededSweep1000Trials) {
  const int host_threads = SweepHostThreads();
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    // Rotate the submitter count so the sweep covers single-threaded,
    // paired, and oversubscribed schedules.
    const int submit_threads = 1 + static_cast<int>(seed % 4);
    RunTrial(seed, submit_threads, host_threads);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first failing seed: " << seed;
    }
  }
}

TEST(ServiceLinearizabilityTest, ConcurrentMutationLinearizes) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto board = MakeBoard(2, 2);
    ServiceConfig config;
    config.board = board.get();
    config.queue_capacity = 128;
    auto service = *QueryService::Create(config);
    const uint64_t table_seed = 1000 + seed;
    ASSERT_TRUE(service
                    ->RegisterTable(std::make_unique<query::Table>(
                        test::MakeServiceTable("orders", kRows, table_seed)))
                    .ok());
    test::SerialReference before("orders", kRows, table_seed);
    test::SerialReference after("orders", kRows, table_seed);
    const auto new_region = test::MakeColumnValues("region", kRows, seed * 7);
    ASSERT_TRUE(after.Update("region", new_region).ok());

    const auto pool = test::MakePredicatePool(4);
    std::vector<std::vector<uint32_t>> pre(pool.size());
    std::vector<std::vector<uint32_t>> post(pool.size());
    for (size_t p = 0; p < pool.size(); ++p) {
      pre[p] = *before.Select(*pool[p]);
      post[p] = *after.Select(*pool[p]);
    }

    constexpr int kQueriesPerThread = 8;
    test::Barrier barrier(3);
    std::vector<std::future<ServiceResponse>> futures(
        2 * kQueriesPerThread);
    std::thread mutator([&] {
      barrier.ArriveAndWait();
      ASSERT_TRUE(service->UpdateColumn("orders", "region", new_region).ok());
    });
    std::vector<std::thread> submitters;
    for (int t = 0; t < 2; ++t) {
      submitters.emplace_back([&, t] {
        barrier.ArriveAndWait();
        for (int q = 0; q < kQueriesPerThread; ++q) {
          ServiceRequest request;
          request.tenant = "t" + std::to_string(t);
          request.table = "orders";
          request.predicate = pool[static_cast<size_t>(q) % pool.size()];
          futures[static_cast<size_t>(t * kQueriesPerThread + q)] =
              service->Submit(std::move(request));
        }
      });
    }
    mutator.join();
    for (std::thread& thread : submitters) thread.join();
    service->Drain();

    for (int t = 0; t < 2; ++t) {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const size_t p = static_cast<size_t>(q) % pool.size();
        const ServiceResponse response =
            futures[static_cast<size_t>(t * kQueriesPerThread + q)].get();
        ASSERT_TRUE(response.status.ok()) << response.status;
        // Linearizability: each query observed exactly one of the two
        // table states, whichever side of the update it landed on.
        EXPECT_TRUE(response.values == pre[p] || response.values == post[p])
            << "seed " << seed << " query " << q
            << " returned a state that is neither pre- nor post-update";
      }
    }
  }
}

/// Full response transcript of one seed, submitted single-threaded in
/// stream order with a drain after every action.
std::vector<std::vector<uint32_t>> ReplayTranscript(uint64_t seed,
                                                    int host_threads) {
  test::WorkloadOptions options;
  options.actions = 24;
  options.rows = kRows;
  const auto actions = test::MakeWorkload(seed, options);
  const auto pool = test::MakePredicatePool(options.predicate_pool);

  auto board = MakeBoard(2, host_threads);
  VirtualClock clock;
  ServiceConfig config;
  config.board = board.get();
  config.queue_capacity = actions.size() + 8;
  config.clock = &clock;
  auto service = *QueryService::Create(config);
  EXPECT_TRUE(service
                  ->RegisterTable(std::make_unique<query::Table>(
                      test::MakeServiceTable("orders", kRows, seed + 17)))
                  .ok());

  std::vector<std::vector<uint32_t>> transcript;
  for (const test::WorkloadAction& action : actions) {
    clock.AdvanceTo(action.at_ns);
    if (action.kind == test::WorkloadAction::Kind::kUpdate) {
      EXPECT_TRUE(service
                      ->UpdateColumn("orders", action.column,
                                     test::MakeColumnValues(
                                         action.column, kRows,
                                         action.update_seed))
                      .ok());
      continue;
    }
    auto future = service->Submit(ToRequest(action, pool));
    service->Drain();
    ServiceResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status;
    transcript.push_back(std::move(response.values));
  }
  return transcript;
}

TEST(ServiceLinearizabilityTest, ReplayDeterministicAcrossHostThreads) {
  for (const uint64_t seed : {3u, 41u, 774u}) {
    const auto transcript1 = ReplayTranscript(seed, /*host_threads=*/1);
    const auto transcript2 = ReplayTranscript(seed, /*host_threads=*/2);
    const auto transcript8 = ReplayTranscript(seed, /*host_threads=*/8);
    EXPECT_EQ(transcript1, transcript2) << "seed " << seed;
    EXPECT_EQ(transcript1, transcript8) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dba::service
