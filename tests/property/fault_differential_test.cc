// Randomized differential testing of the fault-tolerant board: under a
// seeded fault schedule every board operation either returns the exact
// scalar-baseline result or a non-OK Status -- never a silently wrong
// answer (the "never silently wrong" contract of docs/FAULTS.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/scalar_baseline.h"
#include "common/random.h"
#include "system/board.h"

namespace dba::system {
namespace {

constexpr int kTrials = 1000;
constexpr int kCores = 4;

/// A small sorted unique set drawn from a dense-ish universe (so set
/// operations produce non-trivial overlaps).
std::vector<uint32_t> RandomSet(Random& rng, size_t max_size) {
  std::vector<uint32_t> values;
  const size_t size = static_cast<size_t>(rng.Uniform(
      static_cast<uint32_t>(max_size + 1)));
  values.reserve(size);
  uint32_t next = 0;
  for (size_t i = 0; i < size; ++i) {
    next += 1 + static_cast<uint32_t>(rng.Uniform(16));
    values.push_back(next);
  }
  return values;
}

std::vector<uint32_t> RandomValues(Random& rng, size_t max_size) {
  std::vector<uint32_t> values(
      static_cast<size_t>(rng.Uniform(static_cast<uint32_t>(max_size + 1))));
  for (uint32_t& value : values) value = rng.Next32() % 4096u;
  return values;
}

BoardConfig RandomFaultConfig(Random& rng) {
  BoardConfig config;
  config.num_cores = kCores;
  config.host_threads = 1;
  config.fault_plan.seed = rng.Next64();
  config.fault_plan.hang_rate = rng.NextDouble() * 0.25;
  config.fault_plan.input_flip_rate = rng.NextDouble() * 0.25;
  config.fault_plan.result_flip_rate = rng.NextDouble() * 0.25;
  config.fault_plan.transfer_fail_rate = rng.NextDouble() * 0.2;
  config.fault_plan.transfer_timeout_rate = rng.NextDouble() * 0.2;
  config.fault_plan.hang_watchdog_cycles = 1500;
  if (rng.Bernoulli(0.2)) {
    config.fault_plan.broken_cores = {
        static_cast<int>(rng.Uniform(kCores))};
  }
  config.recovery.max_attempts = 2 + static_cast<int>(rng.Uniform(5));
  config.recovery.quarantine_after = 2 + static_cast<int>(rng.Uniform(3));
  return config;
}

std::vector<uint32_t> Expected(SetOp op, const std::vector<uint32_t>& a,
                               const std::vector<uint32_t>& b) {
  switch (op) {
    case SetOp::kIntersect:
      return baseline::ScalarIntersect(a, b);
    case SetOp::kUnion:
      return baseline::ScalarUnion(a, b);
    default:
      return baseline::ScalarDifference(a, b);
  }
}

TEST(FaultDifferentialTest, NeverSilentlyWrong) {
  int recovered = 0;
  int loud_failures = 0;
  uint64_t faults_seen = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Random rng(0x5EED0000u + static_cast<uint64_t>(trial));
    const BoardConfig config = RandomFaultConfig(rng);
    auto board = Board::Create(config);
    ASSERT_TRUE(board.ok()) << board.status();

    const uint32_t which = static_cast<uint32_t>(rng.Uniform(4));
    if (which == 3) {
      const std::vector<uint32_t> values = RandomValues(rng, 200);
      std::vector<uint32_t> expected = values;
      std::sort(expected.begin(), expected.end());
      auto run = (*board)->RunSort(values);
      if (run.ok()) {
        ASSERT_EQ(run->result, expected)
            << "trial " << trial << ": recovered sort differs";
        ++recovered;
        faults_seen += run->recovery.faults_injected;
      } else {
        ++loud_failures;
      }
    } else {
      const SetOp op = which == 0   ? SetOp::kIntersect
                       : which == 1 ? SetOp::kUnion
                                    : SetOp::kDifference;
      const std::vector<uint32_t> a = RandomSet(rng, 200);
      const std::vector<uint32_t> b = RandomSet(rng, 200);
      auto run = (*board)->RunSetOperation(op, a, b);
      if (run.ok()) {
        ASSERT_EQ(run->result, Expected(op, a, b))
            << "trial " << trial << ": recovered result differs";
        ++recovered;
        faults_seen += run->recovery.faults_injected;
      } else {
        ++loud_failures;
      }
    }
  }
  // The sweep must actually exercise the machinery: faults were
  // injected, most runs recovered, and some failed loudly.
  EXPECT_GT(faults_seen, static_cast<uint64_t>(kTrials) / 4);
  EXPECT_GT(recovered, kTrials / 2);
  EXPECT_GT(loud_failures, 0);
}

TEST(FaultDifferentialTest, IdenticalSeedsReproduceIdenticalRuns) {
  // Re-running a faulty trial with the same seed reproduces the same
  // result and the same telemetry, attempt for attempt.
  Random rng(123);
  const std::vector<uint32_t> a = RandomSet(rng, 150);
  const std::vector<uint32_t> b = RandomSet(rng, 150);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto run_once = [&](uint64_t fault_seed) {
      BoardConfig config;
      config.num_cores = kCores;
      config.host_threads = 1;
      config.fault_plan.seed = fault_seed;
      config.fault_plan.hang_rate = 0.15;
      config.fault_plan.result_flip_rate = 0.15;
      config.fault_plan.transfer_timeout_rate = 0.15;
      config.fault_plan.hang_watchdog_cycles = 1500;
      auto board = Board::Create(config);
      EXPECT_TRUE(board.ok()) << board.status();
      return (*board)->RunSetOperation(SetOp::kUnion, a, b);
    };
    const auto first = run_once(seed);
    const auto second = run_once(seed);
    ASSERT_EQ(first.ok(), second.ok()) << "seed " << seed;
    if (!first.ok()) {
      EXPECT_EQ(first.status(), second.status());
      continue;
    }
    EXPECT_EQ(first->result, second->result);
    EXPECT_EQ(first->makespan_cycles, second->makespan_cycles);
    EXPECT_EQ(first->recovery.faults_injected,
              second->recovery.faults_injected);
    EXPECT_EQ(first->recovery.retries, second->recovery.retries);
    EXPECT_EQ(first->recovery.rounds, second->recovery.rounds);
  }
}

}  // namespace
}  // namespace dba::system
