// Randomized property sweeps over the auxiliary instruction-set
// extensions (bitmanip, packscan, partition): hardware-path results must
// match host oracles for arbitrary inputs and configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "common/random.h"
#include "dbkern/bitmanip_kernels.h"
#include "dbkern/compression_kernels.h"
#include "dbkern/partition_kernels.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/bitmanip_extension.h"
#include "tie/packscan_extension.h"
#include "tie/partition_extension.h"

namespace dba {
namespace {

using isa::Reg;

constexpr uint64_t kBase = 0x1000;

/// Fresh 2-LSU core with all three auxiliary extensions attached.
struct Rig {
  Rig()
      : memory(*mem::Memory::Create({.name = "m",
                                     .base = kBase,
                                     .size = 4 << 20,
                                     .access_latency = 1})),
        cpu(MakeConfig()) {
    EXPECT_TRUE(cpu.AttachMemory(&memory).ok());
    EXPECT_TRUE(bitmanip.Attach(&cpu).ok());
    EXPECT_TRUE(packscan.Attach(&cpu).ok());
    EXPECT_TRUE(partition.Attach(&cpu).ok());
  }

  static sim::CoreConfig MakeConfig() {
    sim::CoreConfig config;
    config.num_lsus = 2;
    config.data_bus_bits = 128;
    config.instruction_bus_bits = 64;
    return config;
  }

  Result<uint64_t> Run(const isa::Program& program) {
    program_storage = program;
    DBA_RETURN_IF_ERROR(cpu.LoadProgram(program_storage));
    DBA_ASSIGN_OR_RETURN(sim::ExecStats stats, cpu.Run());
    return stats.cycles;
  }

  mem::Memory memory;
  sim::Cpu cpu;
  tie::BitmanipExtension bitmanip;
  tie::PackScanExtension packscan;
  tie::PartitionExtension partition;
  isa::Program program_storage;
};

TEST(BitmanipPropertyTest, RandomArraysAllPrimitives) {
  Random rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    Rig rig;
    const auto n = static_cast<uint32_t>(rng.Uniform(200));
    std::vector<uint32_t> words(n);
    for (auto& w : words) w = rng.Next32();
    ASSERT_TRUE(rig.memory.WriteBlock(kBase, words).ok());

    // CRC32 against the oracle.
    auto crc = dbkern::BuildCrc32Kernel(true);
    ASSERT_TRUE(crc.ok());
    rig.cpu.ResetArchState();
    rig.bitmanip.ResetState();
    rig.cpu.set_reg(Reg::a0, kBase);
    rig.cpu.set_reg(Reg::a2, n);
    ASSERT_TRUE(rig.Run(*crc).ok());
    EXPECT_EQ(rig.cpu.reg(Reg::a5),
              tie::BitmanipExtension::ReferenceCrc32(
                  reinterpret_cast<const uint8_t*>(words.data()), n * 4));

    // Popcount against std::popcount.
    uint32_t expected_pop = 0;
    for (const uint32_t w : words) {
      expected_pop += static_cast<uint32_t>(std::popcount(w));
    }
    auto pop = dbkern::BuildPopcountKernel(true);
    ASSERT_TRUE(pop.ok());
    rig.cpu.ResetArchState();
    rig.cpu.set_reg(Reg::a0, kBase);
    rig.cpu.set_reg(Reg::a2, n);
    ASSERT_TRUE(rig.Run(*pop).ok());
    EXPECT_EQ(rig.cpu.reg(Reg::a5), expected_pop);
  }
}

TEST(PackScanPropertyTest, RandomWidthsAndCounts) {
  Random rng(202);
  for (int trial = 0; trial < 40; ++trial) {
    Rig rig;
    const int bits = 1 + static_cast<int>(rng.Uniform(32));
    const auto n = static_cast<uint32_t>(rng.Uniform(300));
    const uint32_t mask =
        bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1);
    std::vector<uint32_t> values(n);
    for (auto& v : values) v = rng.Next32() & mask;

    std::vector<uint32_t> packed =
        tie::PackScanExtension::Pack(values, bits);
    packed.resize((packed.size() + 7) & ~size_t{3}, 0);
    ASSERT_TRUE(rig.memory.WriteBlock(kBase, packed).ok());

    auto program = dbkern::BuildUnpackKernel(true, bits);
    ASSERT_TRUE(program.ok());
    rig.cpu.ResetArchState();
    rig.cpu.set_reg(Reg::a0, kBase);
    rig.cpu.set_reg(Reg::a2, n);
    rig.cpu.set_reg(Reg::a4, kBase + (2 << 20));
    ASSERT_TRUE(rig.Run(*program).ok());
    ASSERT_EQ(rig.cpu.reg(Reg::a5), n) << "bits=" << bits;
    if (n > 0) {
      EXPECT_EQ(*rig.memory.ReadBlock(kBase + (2 << 20), n), values)
          << "bits=" << bits << " trial=" << trial;
    }
  }
}

TEST(PartitionPropertyTest, RandomSplittersAndData) {
  Random rng(303);
  for (int trial = 0; trial < 40; ++trial) {
    Rig rig;
    const int buckets = 2 + static_cast<int>(rng.Uniform(15));
    const auto n = static_cast<uint32_t>(rng.Uniform(600));
    std::vector<uint32_t> values(n);
    for (auto& v : values) v = rng.Next32() % 100000;
    std::vector<uint32_t> splitters;
    uint32_t splitter = 0;
    for (int i = 1; i < buckets; ++i) {
      splitter += 1 + static_cast<uint32_t>(rng.Uniform(100000u / static_cast<uint32_t>(buckets)));
      splitters.push_back(splitter);
    }
    const uint32_t capacity = ((n + 4) & ~3u) + 4;

    ASSERT_TRUE(rig.memory.WriteBlock(kBase, values).ok());
    ASSERT_TRUE(
        rig.memory.WriteBlock(kBase + 0x40000, splitters).ok());
    auto program = dbkern::BuildPartitionKernel(true, buckets);
    ASSERT_TRUE(program.ok());
    rig.cpu.ResetArchState();
    rig.cpu.set_reg(Reg::a0, kBase);
    rig.cpu.set_reg(Reg::a1, kBase + 0x40000);
    rig.cpu.set_reg(Reg::a2, n);
    rig.cpu.set_reg(Reg::a3, capacity);
    rig.cpu.set_reg(Reg::a4, kBase + 0x80000);
    rig.cpu.set_reg(Reg::a5, kBase + 0x48000);
    ASSERT_TRUE(rig.Run(*program).ok()) << "trial " << trial;
    ASSERT_EQ(rig.cpu.reg(Reg::a5), n);

    auto counts = *rig.memory.ReadBlock(kBase + 0x48000,
                                        static_cast<size_t>(buckets));
    std::vector<std::vector<uint32_t>> expected(
        static_cast<size_t>(buckets));
    for (const uint32_t value : values) {
      const size_t bucket = static_cast<size_t>(
          std::upper_bound(splitters.begin(), splitters.end(), value) -
          splitters.begin());
      expected[bucket].push_back(value);
    }
    for (uint64_t bucket = 0; bucket < static_cast<uint64_t>(buckets);
         ++bucket) {
      ASSERT_EQ(counts[bucket], expected[bucket].size())
          << "trial " << trial << " bucket " << bucket;
      auto contents = *rig.memory.ReadBlock(
          kBase + 0x80000 + 4 * bucket * capacity, counts[bucket]);
      ASSERT_EQ(contents, expected[bucket])
          << "trial " << trial << " bucket " << bucket;
    }
  }
}

}  // namespace
}  // namespace dba
