// Chaos properties of the resilient QueryService (ctest label `chaos`).
//
// A chaos trial drives the live service -- breaker, rate limits, retry
// budgets, host fallback and all -- through a seeded ChaosSchedule:
// between dispatch steps (while the board is provably idle behind
// Drain) the trial swaps the board's FaultPlan to the current phase's,
// emulating fault-rate ramps, core-death waves, NoC brownouts, and a
// full-board meltdown. The invariant under every profile:
//
//   every response is either byte-identical to the single-threaded
//   serial reference, or a typed non-OK status -- never silence,
//   never a wrong answer.
//
// 1. SeededSweep: 1000 trials (5 profiles x 200 seeds) of the
//    invariant above, plus degraded => OK.
// 2. ReplayDeterminism: the full response transcript of a (profile,
//    seed) pair is identical at board host_threads 1, 2, and 8.
// 3. AllCoresBrokenStaysAvailable: with every board core permanently
//    hung, the breaker trips and direct set ops are still answered --
//    bit-exact, flagged degraded -- by the host fallback.
// 4. MeltdownRecovers: after the operator heals the board, the breaker
//    walks open -> half-open -> closed and service leaves degraded mode.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "fault/fault.h"
#include "query/predicate.h"
#include "query/table.h"
#include "service/query_service.h"
#include "service/resilience.h"
#include "service/service_clock.h"
#include "shared/service_test_util.h"
#include "system/board.h"

namespace dba::service {
namespace {

constexpr uint32_t kRows = 128;
constexpr int kNumCores = 4;

std::unique_ptr<system::Board> MakeBoard(int host_threads) {
  system::BoardConfig config;
  config.num_cores = kNumCores;
  config.host_threads = host_threads;
  auto board = system::Board::Create(config);
  EXPECT_TRUE(board.ok()) << board.status();
  return *std::move(board);
}

/// Non-OK statuses a resilient service may return: every shed and every
/// exhausted recovery ladder is typed. Anything else (kInternal, a
/// default Status, ...) fails the property.
bool IsTypedFailure(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kDataLoss || code == StatusCode::kRateLimited;
}

ServiceRequest ToRequest(
    const test::WorkloadAction& action,
    const std::vector<std::shared_ptr<const query::Predicate>>& pool) {
  ServiceRequest request;
  request.tenant = action.tenant;
  request.priority = action.priority;
  if (action.kind == test::WorkloadAction::Kind::kDirect) {
    request.op = action.op;
    request.a = action.a;
    request.b = action.b;
  } else {
    request.table = "orders";
    request.predicate = pool[action.predicate_index];
  }
  return request;
}

/// One line per response: everything that must replay identically.
std::string TranscriptLine(const ServiceResponse& response) {
  std::ostringstream line;
  line << StatusCodeToString(response.status.code())
       << " degraded=" << response.degraded << " values=";
  for (const uint32_t v : response.values) line << v << ",";
  return line.str();
}

/// Runs one chaos trial; appends one transcript line per non-update
/// action to `transcript` (when non-null).
void RunChaosTrial(fault::ChaosProfile profile, uint64_t seed,
                   int host_threads,
                   std::vector<std::string>* transcript = nullptr) {
  SCOPED_TRACE("profile=" + std::string(fault::ChaosProfileName(profile)) +
               " seed=" + std::to_string(seed) +
               " host_threads=" + std::to_string(host_threads));

  test::WorkloadOptions options;
  options.actions = 12;
  options.rows = kRows;
  options.direct_fraction = 0.5;
  options.update_fraction = 0.1;
  const std::vector<test::WorkloadAction> actions =
      test::MakeWorkload(seed, options);
  const auto pool = test::MakePredicatePool(options.predicate_pool);
  const uint64_t table_seed = seed ^ 0x9E3779B97F4A7C15ull;

  fault::ChaosOptions chaos_options;
  chaos_options.num_cores = kNumCores;
  chaos_options.steps_per_phase = 2;
  chaos_options.hang_watchdog_cycles = 2000;
  auto schedule_or = fault::ChaosSchedule::Make(profile, seed, chaos_options);
  ASSERT_TRUE(schedule_or.ok()) << schedule_or.status();
  const fault::ChaosSchedule& schedule = *schedule_or;

  auto board = MakeBoard(host_threads);
  VirtualClock clock;
  ServiceConfig config;
  config.board = board.get();
  config.clock = &clock;
  config.queue_capacity = actions.size() + 8;
  // A breaker tuned to the trial's virtual timescale: trips after two
  // straight failures (or a quarantine majority), cools off within a
  // few actions' worth of virtual time.
  config.breaker.failure_threshold = 2;
  config.breaker.open_duration_ns = 1000;
  config.breaker.half_open_probes = 2;
  config.breaker.probe_successes_to_close = 1;
  config.host_fallback = true;
  auto service_or = QueryService::Create(config);
  ASSERT_TRUE(service_or.ok()) << service_or.status();
  auto service = *std::move(service_or);
  ASSERT_TRUE(service
                  ->RegisterTable(std::make_unique<query::Table>(
                      test::MakeServiceTable("orders", kRows, table_seed)))
                  .ok());
  test::SerialReference reference("orders", kRows, table_seed);

  size_t applied_phase = static_cast<size_t>(-1);
  for (size_t i = 0; i < actions.size(); ++i) {
    const test::WorkloadAction& action = actions[i];
    // Phase boundaries land between dispatch steps: Drain below
    // guarantees the board is idle here.
    const size_t phase_index = schedule.PhaseIndexForStep(i);
    if (phase_index != applied_phase) {
      const fault::ChaosPhase& phase = schedule.phases()[phase_index];
      if (phase.heal) board->ResetQuarantine();
      ASSERT_TRUE(board->SetFaultPlan(phase.plan).ok());
      applied_phase = phase_index;
    }
    clock.AdvanceTo(action.at_ns);

    if (action.kind == test::WorkloadAction::Kind::kUpdate) {
      const auto values =
          test::MakeColumnValues(action.column, kRows, action.update_seed);
      ASSERT_TRUE(
          service->UpdateColumn("orders", action.column, values).ok());
      ASSERT_TRUE(reference.Update(action.column, values).ok());
      continue;
    }

    auto expected = action.kind == test::WorkloadAction::Kind::kPredicate
                        ? reference.Select(*pool[action.predicate_index])
                        : reference.Direct(action.op, action.a, action.b);
    ASSERT_TRUE(expected.ok()) << expected.status();

    std::future<ServiceResponse> future =
        service->Submit(ToRequest(action, pool));
    service->Drain();
    const ServiceResponse response = future.get();

    if (response.status.ok()) {
      EXPECT_EQ(response.values, *expected)
          << "action " << i << ": OK response diverged from the serial "
          << "reference (degraded=" << response.degraded << ")";
    } else {
      EXPECT_TRUE(IsTypedFailure(response.status.code()))
          << "action " << i
          << ": untyped failure: " << response.status;
      EXPECT_TRUE(response.values.empty());
    }
    if (response.degraded) {
      EXPECT_TRUE(response.status.ok())
          << "degraded responses must carry real results";
    }
    if (transcript != nullptr) {
      transcript->push_back(TranscriptLine(response));
    }
  }
}

/// Board host threads for the sweep: default 2, overridable so the CI
/// flake detector can rerun the identical suite at 1, 2, and 8 and diff
/// the outcomes (trials are pure functions of their seeds).
int SweepHostThreads() {
  const char* env = std::getenv("DBA_SERVICE_HOST_THREADS");
  if (env == nullptr) return 2;
  const int threads = std::atoi(env);
  return threads > 0 ? threads : 2;
}

TEST(ServiceChaos, SeededSweep) {
  constexpr uint64_t kTrialsPerProfile = 200;
  const int host_threads = SweepHostThreads();
  for (size_t p = 0; p < fault::kNumChaosProfiles; ++p) {
    const auto profile = static_cast<fault::ChaosProfile>(p);
    for (uint64_t seed = 1; seed <= kTrialsPerProfile; ++seed) {
      RunChaosTrial(profile, seed * 7919 + p, host_threads);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ServiceChaos, ReplayDeterminism) {
  for (size_t p = 0; p < fault::kNumChaosProfiles; ++p) {
    const auto profile = static_cast<fault::ChaosProfile>(p);
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      std::vector<std::vector<std::string>> transcripts;
      for (const int host_threads : {1, 2, 8}) {
        transcripts.emplace_back();
        RunChaosTrial(profile, seed * 104729 + p, host_threads,
                      &transcripts.back());
        if (::testing::Test::HasFatalFailure()) return;
      }
      EXPECT_EQ(transcripts[0], transcripts[1])
          << "host_threads 1 vs 2 diverged";
      EXPECT_EQ(transcripts[0], transcripts[2])
          << "host_threads 1 vs 8 diverged";
    }
  }
}

TEST(ServiceChaos, AllCoresBrokenStaysAvailable) {
  auto board = MakeBoard(/*host_threads=*/2);
  VirtualClock clock;
  ServiceConfig config;
  config.board = board.get();
  config.clock = &clock;
  config.breaker.failure_threshold = 1;
  config.host_fallback = true;
  auto service_or = QueryService::Create(config);
  ASSERT_TRUE(service_or.ok()) << service_or.status();
  auto service = *std::move(service_or);

  fault::FaultPlan plan;
  plan.seed = 7;
  plan.hang_watchdog_cycles = 2000;
  for (int c = 0; c < kNumCores; ++c) plan.broken_cores.push_back(c);
  ASSERT_TRUE(service->board()->SetFaultPlan(plan).ok());

  test::SerialReference reference("orders", kRows, 42);
  Random rng(99);
  const SetOp ops[] = {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference,
                       SetOp::kMerge};
  uint64_t ok_degraded = 0;
  for (int i = 0; i < 16; ++i) {
    ServiceRequest request;
    request.tenant = "t0";
    request.op = ops[i % 4];
    request.a = test::MakeSortedSet(rng, 48, 4096);
    request.b = test::MakeSortedSet(rng, 48, 4096);
    auto expected = reference.Direct(request.op, request.a, request.b);
    ASSERT_TRUE(expected.ok()) << expected.status();
    std::future<ServiceResponse> future = service->Submit(std::move(request));
    service->Drain();
    const ServiceResponse response = future.get();
    // The very first batch may fail before the breaker trips; after
    // that every response must be served -- degraded but bit-exact.
    if (response.status.ok()) {
      EXPECT_EQ(response.values, *expected) << "direct op " << i;
      if (response.degraded) ++ok_degraded;
    } else {
      EXPECT_TRUE(IsTypedFailure(response.status.code()))
          << response.status;
    }
    clock.AdvanceBy(100);
  }
  EXPECT_GT(ok_degraded, 10u) << "host fallback barely engaged";
  EXPECT_EQ(service->breaker_state(), BreakerState::kOpen);
  const ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.degraded, ok_degraded);
  EXPECT_GT(counters.breaker_transitions, 0u);
}

TEST(ServiceChaos, MeltdownRecovers) {
  auto board = MakeBoard(/*host_threads=*/2);
  VirtualClock clock;
  ServiceConfig config;
  config.board = board.get();
  config.clock = &clock;
  config.breaker.failure_threshold = 1;
  config.breaker.open_duration_ns = 500;
  config.breaker.probe_successes_to_close = 1;
  config.host_fallback = true;
  auto service_or = QueryService::Create(config);
  ASSERT_TRUE(service_or.ok()) << service_or.status();
  auto service = *std::move(service_or);

  const auto submit_direct = [&](uint32_t salt) {
    ServiceRequest request;
    request.tenant = "t0";
    request.op = SetOp::kIntersect;
    request.a = {1 + salt, 5 + salt, 9 + salt};
    request.b = {1 + salt, 9 + salt, 20 + salt};
    std::future<ServiceResponse> future = service->Submit(std::move(request));
    service->Drain();
    return future.get();
  };

  // Meltdown: every core hangs; the breaker trips on the first batch.
  fault::FaultPlan melted;
  melted.seed = 3;
  melted.hang_watchdog_cycles = 2000;
  for (int c = 0; c < kNumCores; ++c) melted.broken_cores.push_back(c);
  ASSERT_TRUE(service->board()->SetFaultPlan(melted).ok());
  (void)submit_direct(0);
  clock.AdvanceBy(10);
  const ServiceResponse during = submit_direct(1);
  EXPECT_TRUE(during.status.ok()) << during.status;
  EXPECT_TRUE(during.degraded);
  EXPECT_EQ(service->breaker_state(), BreakerState::kOpen);

  // The operator replaces the board; once the cool-down elapses the
  // next batch is a half-open probe, and its success closes the
  // breaker: fully board-served, no degraded flag.
  service->board()->ResetQuarantine();
  ASSERT_TRUE(service->board()->SetFaultPlan(fault::FaultPlan{}).ok());
  clock.AdvanceBy(1000);
  const ServiceResponse probe = submit_direct(2);
  EXPECT_TRUE(probe.status.ok()) << probe.status;
  EXPECT_FALSE(probe.degraded);
  clock.AdvanceBy(10);
  const ServiceResponse after = submit_direct(3);
  EXPECT_TRUE(after.status.ok()) << after.status;
  EXPECT_FALSE(after.degraded);
  EXPECT_EQ(service->breaker_state(), BreakerState::kClosed);
}

}  // namespace
}  // namespace dba::service
