// End-to-end smoke: every processor configuration runs every kernel on a
// generated workload and must produce results identical to the host
// reference implementations, at plausible cycle counts.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/scalar_baseline.h"
#include "core/processor.h"
#include "core/workload.h"

namespace dba {
namespace {

class SmokeTest : public ::testing::TestWithParam<ProcessorKind> {};

std::vector<uint32_t> Reference(SetOp op, const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  switch (op) {
    case SetOp::kIntersect:
      return baseline::ScalarIntersect(a, b);
    case SetOp::kUnion:
      return baseline::ScalarUnion(a, b);
    case SetOp::kDifference:
      return baseline::ScalarDifference(a, b);
    default:
      return {};
  }
}

TEST_P(SmokeTest, SetOperationsMatchReference) {
  auto processor = Processor::Create(GetParam());
  ASSERT_TRUE(processor.ok()) << processor.status();
  auto pair = GenerateSetPair(1000, 1000, 0.5, /*seed=*/42);
  ASSERT_TRUE(pair.ok());

  for (SetOp op :
       {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference}) {
    auto run = (*processor)->RunSetOperation(op, pair->a, pair->b);
    ASSERT_TRUE(run.ok()) << "op " << eis::SopModeName(op) << ": "
                          << run.status();
    EXPECT_EQ(run->result, Reference(op, pair->a, pair->b))
        << "op " << eis::SopModeName(op);
    EXPECT_GT(run->metrics.cycles, 0u);
    EXPECT_GT(run->metrics.throughput_meps, 0.0);
  }
}

TEST_P(SmokeTest, SortMatchesReference) {
  auto processor = Processor::Create(GetParam());
  ASSERT_TRUE(processor.ok()) << processor.status();
  std::vector<uint32_t> values = GenerateSortInput(1500, /*seed=*/7);

  auto run = (*processor)->RunSort(values);
  ASSERT_TRUE(run.ok()) << run.status();
  std::vector<uint32_t> expected = values;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(run->sorted, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SmokeTest,
    ::testing::Values(ProcessorKind::k108Mini, ProcessorKind::kDba1Lsu,
                      ProcessorKind::kDba2Lsu, ProcessorKind::kDba1LsuEis,
                      ProcessorKind::kDba2LsuEis),
    [](const ::testing::TestParamInfo<ProcessorKind>& param_info) {
      return std::string(hwmodel::ConfigKindName(param_info.param));
    });

}  // namespace
}  // namespace dba
