// Pins the reproduced Table 2 of EXPERIMENTS.md: the simulator is fully
// deterministic, so the model throughputs for the standard workload
// (5000-element sets / 6500-value sorts, 50% selectivity, seed
// 20140622) are regression-tested to 1%. If a datapath change shifts
// these numbers, EXPERIMENTS.md must be re-measured.

#include <gtest/gtest.h>

#include "core/processor.h"
#include "core/workload.h"

namespace dba {
namespace {

constexpr uint64_t kSeed = 20140622;

struct Expectation {
  ProcessorKind kind;
  bool partial;
  bool applies;  // partial flag meaningful only for EIS kinds
  double intersect;
  double set_union;
  double difference;
  double sort;
};

// Measured model values (see EXPERIMENTS.md, Table 2 section).
const Expectation kExpected[] = {
    {ProcessorKind::k108Mini, false, false, 33.4, 28.1, 33.4, 1.6},
    {ProcessorKind::kDba1Lsu, false, false, 54.4, 48.3, 54.4, 2.6},
    {ProcessorKind::kDba1LsuEis, false, true, 592.8, 492.2, 592.8, 25.6},
    {ProcessorKind::kDba2LsuEis, false, true, 851.0, 707.8, 851.0, 24.7},
    {ProcessorKind::kDba1LsuEis, true, true, 895.3, 741.9, 895.3, 25.6},
    {ProcessorKind::kDba2LsuEis, true, true, 1284.1, 1066.9, 1284.1, 24.7},
};

double Throughput(Processor& processor, SetOp op) {
  auto pair = GenerateSetPair(5000, 5000, 0.5, kSeed);
  auto run = processor.RunSetOperation(op, pair->a, pair->b);
  EXPECT_TRUE(run.ok()) << run.status();
  return run.ok() ? run->metrics.throughput_meps : 0.0;
}

TEST(ReproductionTest, Table2ModelNumbersAreStable) {
  for (const Expectation& expectation : kExpected) {
    ProcessorOptions options;
    options.partial_loading = expectation.partial;
    auto processor = Processor::Create(expectation.kind, options);
    ASSERT_TRUE(processor.ok());
    SCOPED_TRACE(std::string(hwmodel::ConfigKindName(expectation.kind)) +
                 (expectation.partial ? "+partial" : ""));

    EXPECT_NEAR(Throughput(**processor, SetOp::kIntersect),
                expectation.intersect, expectation.intersect * 0.01);
    EXPECT_NEAR(Throughput(**processor, SetOp::kUnion),
                expectation.set_union, expectation.set_union * 0.01);
    EXPECT_NEAR(Throughput(**processor, SetOp::kDifference),
                expectation.difference, expectation.difference * 0.01);

    auto sort_input = GenerateSortInput(6500, kSeed);
    auto sort_run = (*processor)->RunSort(sort_input);
    ASSERT_TRUE(sort_run.ok());
    EXPECT_NEAR(sort_run->metrics.throughput_meps, expectation.sort,
                expectation.sort * 0.02);
  }
}

TEST(ReproductionTest, HeadlineSpeedupHolds) {
  auto mini = Processor::Create(ProcessorKind::k108Mini);
  auto best = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(mini.ok());
  ASSERT_TRUE(best.ok());
  const double speedup = Throughput(**best, SetOp::kIntersect) /
                         Throughput(**mini, SetOp::kIntersect);
  // Paper: 38.4x; model: 38.5x.
  EXPECT_NEAR(speedup, 38.5, 1.0);
}

}  // namespace
}  // namespace dba
