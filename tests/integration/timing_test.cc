// Cycle-level shape tests: the paper's headline timing claims must hold
// in the simulator (Figures 10-13, Table 2 relations). These tests pin
// relative behaviour, not absolute paper numbers (see EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "core/processor.h"
#include "core/workload.h"

namespace dba {
namespace {

std::unique_ptr<Processor> Make(ProcessorKind kind, bool partial = true,
                                int unroll = 1) {
  ProcessorOptions options;
  options.partial_loading = partial;
  options.unroll = unroll;
  auto processor = Processor::Create(kind, options);
  EXPECT_TRUE(processor.ok()) << processor.status();
  return *std::move(processor);
}

double CyclesPerIteration(Processor& processor, SetOp op, double selectivity,
                          uint64_t* sops = nullptr) {
  auto pair = GenerateSetPair(5000, 5000, selectivity, 97);
  EXPECT_TRUE(pair.ok());
  auto run = processor.RunSetOperation(op, pair->a, pair->b);
  EXPECT_TRUE(run.ok()) << run.status();
  const auto& counters = processor.eis()->counters();
  if (sops != nullptr) *sops = counters.sop_executions;
  return static_cast<double>(run->metrics.cycles) /
         static_cast<double>(counters.sop_executions);
}

TEST(CoreLoopTimingTest, ThreeCyclesPerIterationUnrolled1) {
  // Figure 11: "One iteration of the core loop requires only three
  // cycles" (SOP+ST / LD+LD_P+ST_S / loop condition).
  auto processor = Make(ProcessorKind::kDba2LsuEis, true, 1);
  const double cpi = CyclesPerIteration(*processor, SetOp::kIntersect, 0.0);
  EXPECT_GT(cpi, 2.85);
  EXPECT_LT(cpi, 3.3);
}

TEST(CoreLoopTimingTest, UnrollingApproaches2Point03) {
  // Section 4: "if 32 loops are unrolled the average number of cycles
  // per loop is reduced to 2.03".
  auto processor = Make(ProcessorKind::kDba2LsuEis, true, 32);
  const double cpi = CyclesPerIteration(*processor, SetOp::kIntersect, 0.0);
  EXPECT_GT(cpi, 1.95);
  EXPECT_LT(cpi, 2.3);
}

TEST(CoreLoopTimingTest, SingleLsuCostsTheExtraLoadCycle) {
  // Section 5.2: the second LSU buys ~35% because "values of both input
  // sets can now be read in one cycle" -- on one LSU the fused load
  // serializes, making the loop 4 cycles instead of 3.
  auto one = Make(ProcessorKind::kDba1LsuEis, true, 1);
  auto two = Make(ProcessorKind::kDba2LsuEis, true, 1);
  const double cpi_one = CyclesPerIteration(*one, SetOp::kIntersect, 0.0);
  const double cpi_two = CyclesPerIteration(*two, SetOp::kIntersect, 0.0);
  EXPECT_NEAR(cpi_one / cpi_two, 4.0 / 3.0, 0.12);
}

TEST(CoreLoopTimingTest, UnionPaysForStoreTraffic) {
  // Table 2: union throughput trails intersection/difference because it
  // "produces more output tuples, which have to be written into the
  // result set".
  auto processor = Make(ProcessorKind::kDba2LsuEis, true, 32);
  auto pair = GenerateSetPair(5000, 5000, 0.5, 3);
  ASSERT_TRUE(pair.ok());
  auto isect =
      processor->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  auto uni = processor->RunSetOperation(SetOp::kUnion, pair->a, pair->b);
  auto diff =
      processor->RunSetOperation(SetOp::kDifference, pair->a, pair->b);
  ASSERT_TRUE(isect.ok());
  ASSERT_TRUE(uni.ok());
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(uni->metrics.throughput_meps,
            0.95 * isect->metrics.throughput_meps);
  // Intersection and difference behave nearly identically (Table 2:
  // 1203.0 vs 1192.6).
  EXPECT_NEAR(diff->metrics.throughput_meps / isect->metrics.throughput_meps,
              1.0, 0.05);
}

TEST(SelectivityShapeTest, ThroughputIncreasesWithSelectivity) {
  // Figure 13: "If the selectivity increases, the throughput usually
  // increases as well because the number of comparisons decreases."
  auto processor = Make(ProcessorKind::kDba2LsuEis, true, 32);
  double previous = 0;
  for (double selectivity : {0.0, 0.5, 1.0}) {
    auto pair = GenerateSetPair(5000, 5000, selectivity, 11);
    ASSERT_TRUE(pair.ok());
    auto run =
        processor->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    ASSERT_TRUE(run.ok());
    EXPECT_GT(run->metrics.throughput_meps, previous)
        << "selectivity " << selectivity;
    previous = run->metrics.throughput_meps;
  }
}

TEST(SelectivityShapeTest, PartialLoadingWinsExceptAtFullSelectivity) {
  // Figure 13: "Only if the selectivity reaches 100% ... partial loading
  // has no advantage anymore."
  auto partial = Make(ProcessorKind::kDba2LsuEis, true, 32);
  auto whole = Make(ProcessorKind::kDba2LsuEis, false, 32);
  for (double selectivity : {0.0, 0.5}) {
    auto pair = GenerateSetPair(5000, 5000, selectivity, 23);
    ASSERT_TRUE(pair.ok());
    auto partial_run =
        partial->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    auto whole_run =
        whole->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    ASSERT_TRUE(partial_run.ok());
    ASSERT_TRUE(whole_run.ok());
    EXPECT_GT(partial_run->metrics.throughput_meps,
              1.1 * whole_run->metrics.throughput_meps)
        << "selectivity " << selectivity;
  }
  // At 100% both advance by four elements per input set per iteration.
  auto pair = GenerateSetPair(5000, 5000, 1.0, 23);
  ASSERT_TRUE(pair.ok());
  auto partial_run =
      partial->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  auto whole_run =
      whole->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(partial_run.ok());
  ASSERT_TRUE(whole_run.ok());
  EXPECT_NEAR(partial_run->metrics.throughput_meps /
                  whole_run->metrics.throughput_meps,
              1.0, 0.02);
}

TEST(SpeedupShapeTest, EisIsAnOrderOfMagnitudeOverScalar) {
  // Table 2: "the throughput increases by an order of magnitude compared
  // to the processor configurations that provide only the standard
  // instruction set."
  auto eis = Make(ProcessorKind::kDba2LsuEis, true, 32);
  auto scalar = Make(ProcessorKind::kDba1Lsu);
  auto pair = GenerateSetPair(5000, 5000, 0.5, 31);
  ASSERT_TRUE(pair.ok());
  auto eis_run = eis->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  auto scalar_run =
      scalar->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(eis_run.ok());
  ASSERT_TRUE(scalar_run.ok());
  EXPECT_GT(eis_run->metrics.throughput_meps,
            10.0 * scalar_run->metrics.throughput_meps);
}

TEST(SpeedupShapeTest, HeadlineSpeedupOver108Mini) {
  // Section 5.2: "a speedup of up to 38.4x compared to the initial
  // processor configuration 108Mini" (intersection, 50% selectivity).
  auto best = Make(ProcessorKind::kDba2LsuEis, true, 32);
  auto mini = Make(ProcessorKind::k108Mini);
  auto pair = GenerateSetPair(5000, 5000, 0.5, 42);
  ASSERT_TRUE(pair.ok());
  auto best_run = best->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  auto mini_run = mini->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(best_run.ok());
  ASSERT_TRUE(mini_run.ok());
  const double speedup = best_run->metrics.throughput_meps /
                         mini_run->metrics.throughput_meps;
  EXPECT_GT(speedup, 25.0);
  EXPECT_LT(speedup, 55.0);
}

TEST(SpeedupShapeTest, LocalStoreRoughlyDoublesScalarThroughput) {
  // Table 2: "With the attached local store (DBA_1LSU), the throughput
  // of all three operations almost doubles."
  auto mini = Make(ProcessorKind::k108Mini);
  auto dba = Make(ProcessorKind::kDba1Lsu);
  auto pair = GenerateSetPair(3000, 3000, 0.5, 5);
  ASSERT_TRUE(pair.ok());
  for (SetOp op : {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference}) {
    auto mini_run = mini->RunSetOperation(op, pair->a, pair->b);
    auto dba_run = dba->RunSetOperation(op, pair->a, pair->b);
    ASSERT_TRUE(mini_run.ok());
    ASSERT_TRUE(dba_run.ok());
    const double gain = dba_run->metrics.throughput_meps /
                        mini_run->metrics.throughput_meps;
    EXPECT_GT(gain, 1.3) << eis::SopModeName(op);
    EXPECT_LT(gain, 2.5) << eis::SopModeName(op);
  }
}

TEST(SortShapeTest, EisSortIsOrderOfMagnitudeOverScalar) {
  // Table 2: DBA_1LSU_EIS sort is 16x / 8.5x over 108Mini / DBA_1LSU.
  auto eis = Make(ProcessorKind::kDba1LsuEis);
  auto scalar = Make(ProcessorKind::kDba1Lsu);
  auto mini = Make(ProcessorKind::k108Mini);
  const std::vector<uint32_t> values = GenerateSortInput(6500, 9);
  auto eis_run = eis->RunSort(values);
  auto scalar_run = scalar->RunSort(values);
  auto mini_run = mini->RunSort(values);
  ASSERT_TRUE(eis_run.ok());
  ASSERT_TRUE(scalar_run.ok());
  ASSERT_TRUE(mini_run.ok());
  const double vs_scalar = eis_run->metrics.throughput_meps /
                           scalar_run->metrics.throughput_meps;
  const double vs_mini =
      eis_run->metrics.throughput_meps / mini_run->metrics.throughput_meps;
  EXPECT_GT(vs_scalar, 6.0);
  EXPECT_LT(vs_scalar, 14.0);
  EXPECT_GT(vs_mini, 10.0);
  EXPECT_LT(vs_mini, 24.0);
}

TEST(EnergyShapeTest, EisIsFarMoreEnergyEfficient) {
  auto eis = Make(ProcessorKind::kDba2LsuEis, true, 32);
  auto mini = Make(ProcessorKind::k108Mini);
  auto pair = GenerateSetPair(5000, 5000, 0.5, 12);
  ASSERT_TRUE(pair.ok());
  auto eis_run = eis->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  auto mini_run = mini->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(eis_run.ok());
  ASSERT_TRUE(mini_run.ok());
  // 4.9x the power for ~38x the throughput: ~8x less energy per element.
  EXPECT_LT(eis_run->metrics.energy_nj_per_element,
            0.25 * mini_run->metrics.energy_nj_per_element);
}

TEST(ScalarSecondLsuTest, CompilerCannotUseTheSecondLsu) {
  // Section 5.1: "the DBA_2LSU processor is synthesized ... Nevertheless,
  // the compiler is not able to make use of it. Consequently,
  // performance is the same" -- scalar kernels run cycle-identically on
  // one and two LSUs.
  auto one = Make(ProcessorKind::kDba1Lsu);
  auto two = Make(ProcessorKind::kDba2Lsu);
  auto pair = GenerateSetPair(2000, 2000, 0.5, 19);
  ASSERT_TRUE(pair.ok());
  for (SetOp op : {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference}) {
    auto run_one = one->RunSetOperation(op, pair->a, pair->b);
    auto run_two = two->RunSetOperation(op, pair->a, pair->b);
    ASSERT_TRUE(run_one.ok());
    ASSERT_TRUE(run_two.ok());
    EXPECT_EQ(run_one->metrics.cycles, run_two->metrics.cycles)
        << eis::SopModeName(op);
    // Only the synthesized frequency differs (435 vs 429 MHz).
    EXPECT_GT(run_one->metrics.throughput_meps,
              run_two->metrics.throughput_meps);
  }
}

TEST(MemoryTrafficTest, BeatAccountingIsPlausible) {
  auto processor = Make(ProcessorKind::kDba2LsuEis, true, 1);
  auto pair = GenerateSetPair(4000, 4000, 0.5, 8);
  ASSERT_TRUE(pair.ok());
  auto run = processor->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  const auto& stats = run->metrics.stats;
  // Every input element must be loaded at least once: >= 2000 beats
  // total, plus the result stores.
  EXPECT_GE(stats.lsu_beats[0] + stats.lsu_beats[1], 2000u);
  // Both LSUs participate on the two-LSU configuration.
  EXPECT_GT(stats.lsu_beats[0], 0u);
  EXPECT_GT(stats.lsu_beats[1], 0u);
}

}  // namespace
}  // namespace dba
