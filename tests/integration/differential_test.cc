// Differential suite (ctest label "differential"): the fast-forward and
// turbo execution modes against the interpreter reference.
//
//  - fast-forward: results AND ExecStats bit-identical to kInterpret,
//    including the per-pc profile vectors, for all ten kernel programs
//    (four set ops and sort, EIS and scalar form) on both LSU configs.
//  - turbo: results identical; cycle totals within the documented model
//    tolerance (docs/ARCHITECTURE.md, "Execution modes").
//  - board: partition schedule and recovery telemetry identical across
//    modes, under fault injection and the hang watchdog too.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/processor.h"
#include "core/workload.h"
#include "sim/exec_mode.h"
#include "system/board.h"

namespace dba {
namespace {

/// Documented turbo cycle-model tolerance: the bulk segment of a
/// steady-state loop is extrapolated from a calibration prefix, so
/// cycle totals track the cycle-accurate count to within a few tenths
/// of a percent on the shipped kernels. 2% keeps the bound meaningful
/// without pinning the model to one workload.
constexpr double kTurboCycleTolerance = 0.02;

struct Kernel {
  const char* name;
  SetOp op;
  bool scalar;
  bool sort;
};

constexpr Kernel kKernels[] = {
    {"intersect-eis", SetOp::kIntersect, false, false},
    {"intersect-scalar", SetOp::kIntersect, true, false},
    {"union-eis", SetOp::kUnion, false, false},
    {"union-scalar", SetOp::kUnion, true, false},
    {"difference-eis", SetOp::kDifference, false, false},
    {"difference-scalar", SetOp::kDifference, true, false},
    {"merge-eis", SetOp::kMerge, false, false},
    {"merge-scalar", SetOp::kMerge, true, false},
    {"sort-eis", SetOp::kMerge, false, true},
    {"sort-scalar", SetOp::kMerge, true, true},
};

struct KernelRun {
  std::vector<uint32_t> result;
  sim::ExecStats stats;
  uint64_t cycles = 0;
};

Result<KernelRun> RunKernel(Processor& processor, const Kernel& kernel,
                            sim::ExecMode mode, bool profile) {
  RunSettings settings;
  settings.sim_mode = mode;
  settings.force_scalar = kernel.scalar;
  settings.profile = profile;
  KernelRun out;
  if (kernel.sort) {
    const auto values = GenerateSortInput(3000, 7);
    DBA_ASSIGN_OR_RETURN(SortRun run, processor.RunSort(values, settings));
    out.result = std::move(run.sorted);
    out.stats = std::move(run.metrics.stats);
    out.cycles = run.metrics.cycles;
    return out;
  }
  DBA_ASSIGN_OR_RETURN(SetPair pair, GenerateSetPair(2000, 2000, 0.5, 7));
  DBA_ASSIGN_OR_RETURN(
      SetOpRun run,
      kernel.op == SetOp::kMerge
          ? processor.RunMerge(pair.a, pair.b, settings)
          : processor.RunSetOperation(kernel.op, pair.a, pair.b, settings));
  out.result = std::move(run.result);
  out.stats = std::move(run.metrics.stats);
  out.cycles = run.metrics.cycles;
  return out;
}

void ExpectStatsBitIdentical(const sim::ExecStats& got,
                             const sim::ExecStats& want,
                             const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.bundles, want.bundles);
  EXPECT_EQ(got.instructions, want.instructions);
  EXPECT_EQ(got.taken_branches, want.taken_branches);
  EXPECT_EQ(got.mispredicted_branches, want.mispredicted_branches);
  EXPECT_EQ(got.branch_penalty_cycles, want.branch_penalty_cycles);
  EXPECT_EQ(got.load_stall_cycles, want.load_stall_cycles);
  EXPECT_EQ(got.store_stall_cycles, want.store_stall_cycles);
  EXPECT_EQ(got.port_stall_cycles, want.port_stall_cycles);
  EXPECT_EQ(got.ext_extra_cycles, want.ext_extra_cycles);
  EXPECT_EQ(got.lsu_beats[0], want.lsu_beats[0]);
  EXPECT_EQ(got.lsu_beats[1], want.lsu_beats[1]);
  EXPECT_EQ(got.pc_counts, want.pc_counts);
  ASSERT_EQ(got.pc_cycles.size(), want.pc_cycles.size());
  for (size_t pc = 0; pc < got.pc_cycles.size(); ++pc) {
    SCOPED_TRACE("pc " + std::to_string(pc));
    EXPECT_EQ(got.pc_cycles[pc].issue_cycles, want.pc_cycles[pc].issue_cycles);
    EXPECT_EQ(got.pc_cycles[pc].branch_penalty_cycles,
              want.pc_cycles[pc].branch_penalty_cycles);
    EXPECT_EQ(got.pc_cycles[pc].load_stall_cycles,
              want.pc_cycles[pc].load_stall_cycles);
    EXPECT_EQ(got.pc_cycles[pc].store_stall_cycles,
              want.pc_cycles[pc].store_stall_cycles);
    EXPECT_EQ(got.pc_cycles[pc].port_stall_cycles,
              want.pc_cycles[pc].port_stall_cycles);
    EXPECT_EQ(got.pc_cycles[pc].ext_extra_cycles,
              want.pc_cycles[pc].ext_extra_cycles);
    EXPECT_EQ(got.pc_cycles[pc].lsu_beats[0], want.pc_cycles[pc].lsu_beats[0]);
    EXPECT_EQ(got.pc_cycles[pc].lsu_beats[1], want.pc_cycles[pc].lsu_beats[1]);
  }
  EXPECT_EQ(got.mnemonic_counts, want.mnemonic_counts);
}

class ModeDifferentialTest
    : public ::testing::TestWithParam<ProcessorKind> {};

TEST_P(ModeDifferentialTest, FastForwardBitIdenticalToInterpret) {
  auto processor = Processor::Create(GetParam());
  ASSERT_TRUE(processor.ok());
  for (const Kernel& kernel : kKernels) {
    auto reference =
        RunKernel(**processor, kernel, sim::ExecMode::kInterpret, true);
    ASSERT_TRUE(reference.ok()) << kernel.name;
    auto fast =
        RunKernel(**processor, kernel, sim::ExecMode::kFastForward, true);
    ASSERT_TRUE(fast.ok()) << kernel.name;
    EXPECT_EQ(fast->result, reference->result) << kernel.name;
    ExpectStatsBitIdentical(fast->stats, reference->stats, kernel.name);
  }
}

TEST_P(ModeDifferentialTest, TurboResultsExactCyclesWithinTolerance) {
  auto processor = Processor::Create(GetParam());
  ASSERT_TRUE(processor.ok());
  for (const Kernel& kernel : kKernels) {
    auto reference =
        RunKernel(**processor, kernel, sim::ExecMode::kInterpret, false);
    ASSERT_TRUE(reference.ok()) << kernel.name;
    auto turbo = RunKernel(**processor, kernel, sim::ExecMode::kTurbo, false);
    ASSERT_TRUE(turbo.ok()) << kernel.name;
    EXPECT_EQ(turbo->result, reference->result) << kernel.name;
    const double reference_cycles =
        static_cast<double>(reference->cycles);
    EXPECT_NEAR(static_cast<double>(turbo->cycles), reference_cycles,
                reference_cycles * kTurboCycleTolerance)
        << kernel.name;
  }
}

INSTANTIATE_TEST_SUITE_P(BothLsuConfigs, ModeDifferentialTest,
                         ::testing::Values(ProcessorKind::kDba1LsuEis,
                                           ProcessorKind::kDba2LsuEis),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          ProcessorKind::kDba1LsuEis
                                      ? "Dba1LsuEis"
                                      : "Dba2LsuEis";
                         });

// --- Board-level schedule and fault/watchdog differentials ---

Result<system::ParallelRun> RunBoard(sim::ExecMode mode, double fault_rate,
                                     std::vector<int> broken_cores) {
  system::BoardConfig config;
  config.num_cores = 4;
  config.host_threads = 1;
  config.sim_mode = mode;
  config.fault_plan.seed = 99;
  config.fault_plan.hang_rate = fault_rate;
  config.fault_plan.input_flip_rate = fault_rate;
  config.fault_plan.result_flip_rate = fault_rate;
  config.fault_plan.transfer_fail_rate = fault_rate;
  config.fault_plan.transfer_timeout_rate = fault_rate;
  config.fault_plan.broken_cores = std::move(broken_cores);
  DBA_ASSIGN_OR_RETURN(auto board, system::Board::Create(config));
  DBA_ASSIGN_OR_RETURN(SetPair pair, GenerateSetPair(40000, 40000, 0.5, 13));
  return board->RunSetOperation(SetOp::kIntersect, pair.a, pair.b);
}

void ExpectSameRecovery(const system::RecoveryTelemetry& got,
                        const system::RecoveryTelemetry& want) {
  EXPECT_EQ(got.faults_injected, want.faults_injected);
  EXPECT_EQ(got.failed_attempts, want.failed_attempts);
  EXPECT_EQ(got.verification_failures, want.verification_failures);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.requeues, want.requeues);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.quarantined_cores, want.quarantined_cores);
  EXPECT_EQ(got.degraded, want.degraded);
}

TEST(BoardDifferentialTest, FastForwardScheduleByteIdentical) {
  auto reference = RunBoard(sim::ExecMode::kInterpret, 0.0, {});
  ASSERT_TRUE(reference.ok());
  auto fast = RunBoard(sim::ExecMode::kFastForward, 0.0, {});
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->result, reference->result);
  EXPECT_EQ(fast->makespan_cycles, reference->makespan_cycles);
  EXPECT_EQ(fast->per_core_cycles, reference->per_core_cycles);
}

TEST(BoardDifferentialTest, TurboResultsExactScheduleWithinTolerance) {
  auto reference = RunBoard(sim::ExecMode::kInterpret, 0.0, {});
  ASSERT_TRUE(reference.ok());
  auto turbo = RunBoard(sim::ExecMode::kTurbo, 0.0, {});
  ASSERT_TRUE(turbo.ok());
  EXPECT_EQ(turbo->result, reference->result);
  const double reference_makespan =
      static_cast<double>(reference->makespan_cycles);
  EXPECT_NEAR(static_cast<double>(turbo->makespan_cycles),
              reference_makespan,
              reference_makespan * kTurboCycleTolerance);
}

TEST(BoardDifferentialTest, FaultRecoveryIdenticalAcrossModes) {
  auto reference = RunBoard(sim::ExecMode::kInterpret, 0.05, {});
  ASSERT_TRUE(reference.ok());
  for (const sim::ExecMode mode :
       {sim::ExecMode::kFastForward, sim::ExecMode::kTurbo}) {
    SCOPED_TRACE(std::string(sim::ExecModeName(mode)));
    auto run = RunBoard(mode, 0.05, {});
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->result, reference->result);
    ExpectSameRecovery(run->recovery, reference->recovery);
  }
  // Fast-forward additionally pins the schedule bit-exactly.
  auto fast = RunBoard(sim::ExecMode::kFastForward, 0.05, {});
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->makespan_cycles, reference->makespan_cycles);
  EXPECT_EQ(fast->per_core_cycles, reference->per_core_cycles);
}

TEST(BoardDifferentialTest, HangWatchdogIdenticalAcrossModes) {
  // A permanently broken core exercises the cycle-watchdog path: the
  // hang program runs on the real Cpu under each mode and the watchdog
  // budget -- not a simulated status -- raises the failure.
  auto reference = RunBoard(sim::ExecMode::kInterpret, 0.0, {1});
  ASSERT_TRUE(reference.ok());
  EXPECT_GT(reference->recovery.requeues, 0u);
  for (const sim::ExecMode mode :
       {sim::ExecMode::kFastForward, sim::ExecMode::kTurbo}) {
    SCOPED_TRACE(std::string(sim::ExecModeName(mode)));
    auto run = RunBoard(mode, 0.0, {1});
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->result, reference->result);
    ExpectSameRecovery(run->recovery, reference->recovery);
  }
}

}  // namespace
}  // namespace dba
