// The Figure 4 verification stage as a test: the extension kernels must
// be observationally equivalent to the scalar kernels across randomized
// workloads, on both EIS configurations.

#include <gtest/gtest.h>

#include "core/processor.h"
#include "toolchain/equivalence.h"

namespace dba::toolchain {
namespace {

class CrossValidationTest : public ::testing::TestWithParam<ProcessorKind> {};

TEST_P(CrossValidationTest, SetOperationsEquivalent) {
  auto processor = Processor::Create(GetParam());
  ASSERT_TRUE(processor.ok());
  for (SetOp op : {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference}) {
    auto report = CheckSetOpEquivalence(**processor, op, /*trials=*/20,
                                        /*seed=*/0xBEEF);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->passed()) << report->ToString();
    EXPECT_EQ(report->trials, 20u);
  }
}

TEST_P(CrossValidationTest, SortEquivalent) {
  auto processor = Processor::Create(GetParam());
  ASSERT_TRUE(processor.ok());
  auto report = CheckSortEquivalence(**processor, /*trials=*/8,
                                     /*seed=*/0xF00D);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->passed()) << report->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    EisKinds, CrossValidationTest,
    ::testing::Values(ProcessorKind::kDba1LsuEis,
                      ProcessorKind::kDba2LsuEis),
    [](const ::testing::TestParamInfo<ProcessorKind>& param_info) {
      return std::string(hwmodel::ConfigKindName(param_info.param));
    });

TEST(CrossValidationTest, RequiresEisConfiguration) {
  auto processor = Processor::Create(ProcessorKind::kDba1Lsu);
  ASSERT_TRUE(processor.ok());
  EXPECT_EQ(CheckSetOpEquivalence(**processor, SetOp::kIntersect, 1, 1)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(CheckSortEquivalence(**processor, 1, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CrossValidationTest, ReportRendersStatus) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  auto report =
      CheckSetOpEquivalence(**processor, SetOp::kIntersect, 3, 42);
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString();
  EXPECT_NE(text.find("setop/intersect"), std::string::npos);
  EXPECT_NE(text.find("[PASS]"), std::string::npos);
}

}  // namespace
}  // namespace dba::toolchain
