// Tests of the bit-manipulation extension and the instruction-merging
// kernels (paper Section 2.2): hardware and software variants must
// agree with host oracles and with each other, and the merged
// instructions must be dramatically cheaper.

#include <gtest/gtest.h>

#include <bit>

#include "common/random.h"
#include "dbkern/bitmanip_kernels.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/bitmanip_extension.h"

namespace dba {
namespace {

using isa::Reg;
using tie::BitmanipExtension;

constexpr uint64_t kDataBase = 0x1000;
constexpr uint64_t kOutBase = 0x8000;

class BitmanipTest : public ::testing::Test {
 protected:
  BitmanipTest()
      : memory_(*mem::Memory::Create({.name = "m",
                                      .base = kDataBase,
                                      .size = 64 << 10,
                                      .access_latency = 1})),
        cpu_(MakeConfig()) {
    EXPECT_TRUE(cpu_.AttachMemory(&memory_).ok());
    EXPECT_TRUE(ext_.Attach(&cpu_).ok());
  }

  static sim::CoreConfig MakeConfig() {
    sim::CoreConfig config;
    config.instruction_bus_bits = 64;
    return config;
  }

  /// Runs `program` over `words`; returns (a5, cycles).
  Result<std::pair<uint32_t, uint64_t>> RunOver(
      const isa::Program& program, const std::vector<uint32_t>& words) {
    DBA_RETURN_IF_ERROR(memory_.WriteBlock(kDataBase, words));
    DBA_RETURN_IF_ERROR(cpu_.LoadProgram(program));
    cpu_.ResetArchState();
    ext_.ResetState();
    cpu_.set_reg(Reg::a0, kDataBase);
    cpu_.set_reg(Reg::a2, static_cast<uint32_t>(words.size()));
    cpu_.set_reg(Reg::a4, kOutBase);
    DBA_ASSIGN_OR_RETURN(sim::ExecStats stats, cpu_.Run());
    return std::make_pair(cpu_.reg(Reg::a5), stats.cycles);
  }

  mem::Memory memory_;
  sim::Cpu cpu_;
  BitmanipExtension ext_;
};

TEST_F(BitmanipTest, ReferenceOraclesAreSane) {
  // CRC32("123456789") = 0xCBF43926 (the classic check value).
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(BitmanipExtension::ReferenceCrc32(check, sizeof check),
            0xCBF43926u);
  EXPECT_EQ(BitmanipExtension::ReferenceBitReverse(0x80000000u), 1u);
  EXPECT_EQ(BitmanipExtension::ReferenceBitReverse(0x00000001u),
            0x80000000u);
  EXPECT_EQ(BitmanipExtension::ReferenceBitReverse(0xF0F0F0F0u),
            0x0F0F0F0Fu);
}

TEST_F(BitmanipTest, CrcKernelsMatchOracle) {
  Random rng(1);
  std::vector<uint32_t> words(64);
  for (auto& w : words) w = rng.Next32();
  const uint32_t expected = BitmanipExtension::ReferenceCrc32(
      reinterpret_cast<const uint8_t*>(words.data()), words.size() * 4);

  auto hw = dbkern::BuildCrc32Kernel(/*use_extension=*/true);
  auto sw = dbkern::BuildCrc32Kernel(/*use_extension=*/false);
  ASSERT_TRUE(hw.ok());
  ASSERT_TRUE(sw.ok());
  auto hw_run = RunOver(*hw, words);
  auto sw_run = RunOver(*sw, words);
  ASSERT_TRUE(hw_run.ok()) << hw_run.status();
  ASSERT_TRUE(sw_run.ok()) << sw_run.status();
  EXPECT_EQ(hw_run->first, expected);
  EXPECT_EQ(sw_run->first, expected);
  // Section 2.2: the merged instruction collapses the shift/xor cascade.
  EXPECT_LT(hw_run->second * 10, sw_run->second);
}

TEST_F(BitmanipTest, BitReverseKernelsMatchOracle) {
  Random rng(2);
  std::vector<uint32_t> words(50);
  for (auto& w : words) w = rng.Next32();

  for (bool use_extension : {true, false}) {
    auto program = dbkern::BuildBitReverseKernel(use_extension);
    ASSERT_TRUE(program.ok());
    auto run = RunOver(*program, words);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->first, words.size());
    auto out = *memory_.ReadBlock(kOutBase, words.size());
    for (size_t i = 0; i < words.size(); ++i) {
      ASSERT_EQ(out[i], BitmanipExtension::ReferenceBitReverse(words[i]))
          << "word " << i << " ext=" << use_extension;
    }
  }
}

TEST_F(BitmanipTest, BitReverseMergingSavesCycles) {
  std::vector<uint32_t> words(100, 0xDEADBEEF);
  auto hw = dbkern::BuildBitReverseKernel(true);
  auto sw = dbkern::BuildBitReverseKernel(false);
  ASSERT_TRUE(hw.ok());
  ASSERT_TRUE(sw.ok());
  auto hw_run = RunOver(*hw, words);
  auto sw_run = RunOver(*sw, words);
  ASSERT_TRUE(hw_run.ok());
  ASSERT_TRUE(sw_run.ok());
  // "Reversing the order of the bits ... is cheap in hardware whereas it
  // requires dozens of instructions in software."
  EXPECT_LT(hw_run->second * 3, sw_run->second);
}

TEST_F(BitmanipTest, PopcountKernelsMatchOracle) {
  Random rng(3);
  std::vector<uint32_t> words(80);
  uint32_t expected = 0;
  for (auto& w : words) {
    w = rng.Next32();
    expected += static_cast<uint32_t>(std::popcount(w));
  }
  for (bool use_extension : {true, false}) {
    auto program = dbkern::BuildPopcountKernel(use_extension);
    ASSERT_TRUE(program.ok());
    auto run = RunOver(*program, words);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->first, expected) << "ext=" << use_extension;
  }
}

TEST_F(BitmanipTest, EmptyInputs) {
  for (bool use_extension : {true, false}) {
    auto crc = dbkern::BuildCrc32Kernel(use_extension);
    ASSERT_TRUE(crc.ok());
    auto run = RunOver(*crc, {});
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->first, 0u);  // CRC of nothing: ~~0xFFFFFFFF -> 0
    auto pop = dbkern::BuildPopcountKernel(use_extension);
    ASSERT_TRUE(pop.ok());
    auto pop_run = RunOver(*pop, {});
    ASSERT_TRUE(pop_run.ok());
    EXPECT_EQ(pop_run->first, 0u);
  }
}

TEST_F(BitmanipTest, CrcStateResetByPowerOn) {
  EXPECT_EQ(ext_.crc_state(), 0xFFFFFFFFu);
}

}  // namespace
}  // namespace dba
