#include <gtest/gtest.h>

#include "baseline/scalar_baseline.h"
#include "core/workload.h"
#include "mem/memory.h"
#include "prefetch/dma.h"
#include "prefetch/streaming.h"

namespace dba::prefetch {
namespace {

TEST(DmaTest, TransferCyclesModel) {
  DmaController dma({.bytes_per_cycle = 8.0,
                     .burst_bytes = 4096,
                     .setup_cycles_per_burst = 32});
  EXPECT_EQ(dma.TransferCycles(0), 0u);
  // One burst: setup + bytes/bandwidth.
  EXPECT_EQ(dma.TransferCycles(4096), 32u + 512u);
  // Two bursts.
  EXPECT_EQ(dma.TransferCycles(4097), 64u + 512u);
  // Sub-burst transfer still pays one setup.
  EXPECT_EQ(dma.TransferCycles(64), 32u + 8u);
}

TEST(DmaTest, ExecuteCopiesBetweenMemories) {
  auto src = *mem::Memory::Create(
      {.name = "src", .base = 0x1000, .size = 256, .access_latency = 4});
  auto dst = *mem::Memory::Create(
      {.name = "dst", .base = 0x2000, .size = 256, .access_latency = 1,
       .dual_port = true});
  mem::MemorySystem system;
  ASSERT_TRUE(system.AddRegion(&src).ok());
  ASSERT_TRUE(system.AddRegion(&dst).ok());
  const std::vector<uint32_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(src.WriteBlock(0x1000, payload).ok());

  DmaController dma({});
  dma.Program({{.src = 0x1000, .dst = 0x2000, .bytes = 32}});
  auto cycles = dma.Execute(system);
  ASSERT_TRUE(cycles.ok()) << cycles.status();
  EXPECT_GT(*cycles, 0u);
  EXPECT_EQ(*dst.ReadBlock(0x2000, 8), payload);
}

TEST(DmaTest, ExecuteValidatesDescriptors) {
  auto memory = *mem::Memory::Create(
      {.name = "m", .base = 0x1000, .size = 256, .access_latency = 1});
  mem::MemorySystem system;
  ASSERT_TRUE(system.AddRegion(&memory).ok());
  DmaController dma({});
  dma.Program({{.src = 0x1001, .dst = 0x1010, .bytes = 4}});
  EXPECT_EQ(dma.Execute(system).status().code(),
            StatusCode::kInvalidArgument);
  dma.Program({{.src = 0x9000, .dst = 0x1010, .bytes = 4}});
  EXPECT_EQ(dma.Execute(system).status().code(), StatusCode::kNotFound);
}

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() {
    auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
    EXPECT_TRUE(processor.ok());
    processor_ = *std::move(processor);
  }

  std::unique_ptr<Processor> processor_;
};

TEST_F(StreamingTest, LargeIntersectionMatchesReference) {
  // 50k elements per side: an order of magnitude beyond the local store.
  auto pair = GenerateSetPair(50000, 50000, 0.5, 77);
  ASSERT_TRUE(pair.ok());
  StreamingSetOperation streaming(processor_.get(), DmaConfig{});
  auto run = streaming.Run(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result, baseline::ScalarIntersect(pair->a, pair->b));
  EXPECT_GT(run->chunks, 5u);
}

TEST_F(StreamingTest, UnionAndDifferenceWithTails) {
  // Asymmetric sizes force a remainder stream after the main loop.
  auto pair = GenerateSetPair(30000, 9000, 0.3, 5);
  ASSERT_TRUE(pair.ok());
  StreamingSetOperation streaming(processor_.get(), DmaConfig{});
  auto union_run = streaming.Run(SetOp::kUnion, pair->a, pair->b);
  ASSERT_TRUE(union_run.ok());
  EXPECT_EQ(union_run->result, baseline::ScalarUnion(pair->a, pair->b));
  auto diff_run = streaming.Run(SetOp::kDifference, pair->a, pair->b);
  ASSERT_TRUE(diff_run.ok());
  EXPECT_EQ(diff_run->result, baseline::ScalarDifference(pair->a, pair->b));
}

TEST_F(StreamingTest, SmallInputsSingleChunk) {
  auto pair = GenerateSetPair(100, 100, 0.5, 3);
  ASSERT_TRUE(pair.ok());
  StreamingSetOperation streaming(processor_.get(), DmaConfig{});
  auto run = streaming.Run(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result, baseline::ScalarIntersect(pair->a, pair->b));
  EXPECT_EQ(run->chunks, 1u);
}

TEST_F(StreamingTest, ThroughputStaysRoughlyConstant) {
  // Section 5.2: "System level simulation validates a constant
  // throughput of the processor for larger data sets due to the
  // concurrently performed data prefetch."
  auto small_pair = GenerateSetPair(4000, 4000, 0.5, 8);
  auto large_pair = GenerateSetPair(64000, 64000, 0.5, 8);
  ASSERT_TRUE(small_pair.ok());
  ASSERT_TRUE(large_pair.ok());
  auto in_memory = processor_->RunSetOperation(SetOp::kIntersect,
                                               small_pair->a, small_pair->b);
  ASSERT_TRUE(in_memory.ok());
  StreamingSetOperation streaming(processor_.get(), DmaConfig{});
  auto streamed = streaming.Run(SetOp::kIntersect, large_pair->a,
                                large_pair->b);
  ASSERT_TRUE(streamed.ok());
  // Streaming throughput within 40% of the in-memory figure.
  EXPECT_GT(streamed->throughput_meps,
            0.6 * in_memory->metrics.throughput_meps);
  EXPECT_GT(streamed->compute_cycles, 0u);
  EXPECT_GT(streamed->dma_cycles, 0u);
}

}  // namespace
}  // namespace dba::prefetch
