// Tests of the range-partitioning extension (the HARP-style streaming
// partitioner, paper Sections 1 and 6).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "isa/assembler.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "dbkern/partition_kernels.h"
#include "tie/partition_extension.h"

namespace dba {
namespace {

using isa::Reg;
using tie::PartitionExtension;

constexpr uint64_t kSrcBase = 0x1000;
constexpr uint64_t kSplitterBase = 0x40000;
constexpr uint64_t kBucketBase = 0x50000;
constexpr uint64_t kCountBase = 0x48000;

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest()
      : memory_(*mem::Memory::Create({.name = "m",
                                      .base = kSrcBase,
                                      .size = 1 << 20,
                                      .access_latency = 1})),
        cpu_(MakeConfig()) {
    EXPECT_TRUE(cpu_.AttachMemory(&memory_).ok());
    EXPECT_TRUE(ext_.Attach(&cpu_).ok());
  }

  static sim::CoreConfig MakeConfig() {
    sim::CoreConfig config;
    config.num_lsus = 2;
    config.data_bus_bits = 128;
    config.instruction_bus_bits = 64;
    return config;
  }

  /// Partitions `values` into `buckets` ranges; returns per-bucket
  /// contents read back from memory, plus the run cycles.
  Result<std::pair<std::vector<std::vector<uint32_t>>, uint64_t>>
  RunPartition(const std::vector<uint32_t>& values,
               const std::vector<uint32_t>& splitters,
               uint32_t bucket_capacity) {
    const auto buckets = static_cast<int>(splitters.size()) + 1;
    DBA_RETURN_IF_ERROR(memory_.WriteBlock(kSrcBase, values));
    DBA_RETURN_IF_ERROR(memory_.WriteBlock(kSplitterBase, splitters));

    isa::Assembler masm;
    isa::Label loop;
    masm.Movi(Reg::a7, 0);
    masm.Tie(PartitionExtension::kInit, static_cast<uint16_t>(buckets));
    masm.Bind(&loop, "partition_loop");
    masm.Tie(PartitionExtension::kPartitionBeat, 6);
    masm.Bne(Reg::a6, Reg::a7, &loop);
    masm.Tie(PartitionExtension::kFlush);
    masm.Halt();
    auto program = masm.Finish();
    if (!program.ok()) return program.status();
    program_ = *std::move(program);

    cpu_.ResetArchState();
    ext_.ResetState();
    cpu_.set_reg(Reg::a0, kSrcBase);
    cpu_.set_reg(Reg::a1, kSplitterBase);
    cpu_.set_reg(Reg::a2, static_cast<uint32_t>(values.size()));
    cpu_.set_reg(Reg::a3, bucket_capacity);
    cpu_.set_reg(Reg::a4, kBucketBase);
    cpu_.set_reg(Reg::a5, kCountBase);
    DBA_RETURN_IF_ERROR(cpu_.LoadProgram(program_));
    DBA_ASSIGN_OR_RETURN(sim::ExecStats stats, cpu_.Run());

    DBA_ASSIGN_OR_RETURN(
        std::vector<uint32_t> counts,
        memory_.ReadBlock(kCountBase, static_cast<size_t>(buckets)));
    std::vector<std::vector<uint32_t>> out;
    for (uint64_t bucket = 0; bucket < static_cast<uint64_t>(buckets);
         ++bucket) {
      const uint64_t addr = kBucketBase + 4 * bucket * bucket_capacity;
      DBA_ASSIGN_OR_RETURN(
          std::vector<uint32_t> contents,
          memory_.ReadBlock(addr, counts[static_cast<size_t>(bucket)]));
      out.push_back(std::move(contents));
    }
    if (cpu_.reg(Reg::a5) != values.size()) {
      return Status::Internal("flush total mismatch");
    }
    return std::make_pair(std::move(out), stats.cycles);
  }

  mem::Memory memory_;
  sim::Cpu cpu_;
  PartitionExtension ext_;
  isa::Program program_;
};

std::vector<std::vector<uint32_t>> Reference(
    const std::vector<uint32_t>& values,
    const std::vector<uint32_t>& splitters) {
  std::vector<std::vector<uint32_t>> buckets(splitters.size() + 1);
  for (const uint32_t value : values) {
    const size_t bucket = static_cast<size_t>(
        std::upper_bound(splitters.begin(), splitters.end(), value) -
        splitters.begin());
    buckets[bucket].push_back(value);
  }
  return buckets;
}

TEST_F(PartitionTest, PartitionsCorrectlyAndStably) {
  Random rng(3);
  std::vector<uint32_t> values(1000);
  for (auto& v : values) v = static_cast<uint32_t>(rng.Uniform(10000));
  const std::vector<uint32_t> splitters = {2500, 5000, 7500};
  auto run = RunPartition(values, splitters, 1024);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->first, Reference(values, splitters));
}

TEST_F(PartitionTest, BucketCountsSweep) {
  Random rng(9);
  std::vector<uint32_t> values(512);
  for (auto& v : values) v = rng.Next32() % 4096;
  for (int buckets : {2, 3, 8, 16}) {
    std::vector<uint32_t> splitters;
    for (int i = 1; i < buckets; ++i) {
      splitters.push_back(static_cast<uint32_t>(4096 * i / buckets));
    }
    auto run = RunPartition(values, splitters, 1024);
    ASSERT_TRUE(run.ok()) << "buckets=" << buckets << ": " << run.status();
    EXPECT_EQ(run->first, Reference(values, splitters))
        << "buckets=" << buckets;
  }
}

TEST_F(PartitionTest, BoundaryValuesGoRight) {
  // Values equal to a splitter belong to the bucket to its right
  // (upper_bound semantics, matching BucketFor's >=).
  const std::vector<uint32_t> values = {9, 10, 11, 19, 20, 21, 0, 5};
  const std::vector<uint32_t> splitters = {10, 20};
  auto run = RunPartition(values, splitters, 64);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->first[0], (std::vector<uint32_t>{9, 0, 5}));
  EXPECT_EQ(run->first[1], (std::vector<uint32_t>{10, 11, 19}));
  EXPECT_EQ(run->first[2], (std::vector<uint32_t>{20, 21}));
}

TEST_F(PartitionTest, EdgeSizes) {
  const std::vector<uint32_t> splitters = {100};
  for (uint32_t n : {0u, 1u, 3u, 4u, 5u, 8u}) {
    std::vector<uint32_t> values;
    for (uint32_t i = 0; i < n; ++i) values.push_back(i * 60);
    auto run = RunPartition(values, splitters, 64);
    ASSERT_TRUE(run.ok()) << "n=" << n << ": " << run.status();
    EXPECT_EQ(run->first, Reference(values, splitters)) << "n=" << n;
  }
}

TEST_F(PartitionTest, OverflowReportsResourceExhausted) {
  std::vector<uint32_t> values(64, 5);  // all land in bucket 0
  auto run = RunPartition(values, {1000}, /*bucket_capacity=*/16);
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(PartitionTest, ValidatesConfiguration) {
  // Bucket count out of range.
  auto run = RunPartition({1, 2, 3}, {}, 64);  // 1 bucket
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  // Non-increasing splitters.
  auto bad = RunPartition({1, 2, 3}, {50, 50}, 64);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PartitionTest, SoftwareKernelMatchesExtension) {
  // The base-ISA partition routine (dbkern::BuildPartitionKernel,
  // software variant) must route identically to the extension.
  Random rng(13);
  std::vector<uint32_t> values(777);
  for (auto& v : values) v = rng.Next32() % 9999;
  const std::vector<uint32_t> splitters = {2000, 4000, 6000, 8000};
  constexpr uint32_t kCapacity = 1024;
  ASSERT_TRUE(memory_.WriteBlock(kSrcBase, values).ok());
  ASSERT_TRUE(memory_.WriteBlock(kSplitterBase, splitters).ok());
  // Zero the count table (the software kernel read-modify-writes it).
  ASSERT_TRUE(
      memory_.WriteBlock(kCountBase, std::vector<uint32_t>(5, 0)).ok());

  auto program = dbkern::BuildPartitionKernel(/*use_extension=*/false, 5);
  ASSERT_TRUE(program.ok());
  program_ = *std::move(program);
  cpu_.ResetArchState();
  cpu_.set_reg(Reg::a0, kSrcBase);
  cpu_.set_reg(Reg::a1, kSplitterBase);
  cpu_.set_reg(Reg::a2, static_cast<uint32_t>(values.size()));
  cpu_.set_reg(Reg::a3, kCapacity);
  cpu_.set_reg(Reg::a4, kBucketBase);
  cpu_.set_reg(Reg::a5, kCountBase);
  ASSERT_TRUE(cpu_.LoadProgram(program_).ok());
  ASSERT_TRUE(cpu_.Run().ok());

  const auto expected = Reference(values, splitters);
  auto counts = *memory_.ReadBlock(kCountBase, 5);
  for (uint64_t bucket = 0; bucket < 5; ++bucket) {
    ASSERT_EQ(counts[bucket], expected[bucket].size()) << bucket;
    auto contents = *memory_.ReadBlock(
        kBucketBase + 4 * bucket * kCapacity, counts[bucket]);
    EXPECT_EQ(contents, expected[bucket]) << bucket;
  }
}

TEST_F(PartitionTest, StreamsAtBeatRate) {
  // ~4 values per 3-cycle loop iteration (load beat + spill beat run on
  // separate LSUs), HARP-style streaming.
  Random rng(4);
  std::vector<uint32_t> values(4096);
  for (auto& v : values) v = rng.Next32() % 65536;
  std::vector<uint32_t> splitters = {16384, 32768, 49152};
  auto run = RunPartition(values, splitters, 4096);
  ASSERT_TRUE(run.ok());
  const double cycles_per_value =
      static_cast<double>(run->second) / 4096.0;
  EXPECT_LT(cycles_per_value, 1.2);
}

}  // namespace
}  // namespace dba
