// Tests of the observability layer (src/obs): JSON model round-trips,
// stall-attribution invariants on real profiled runs, Chrome trace-event
// output validity, and the dba.bench.v1 schema validator.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/processor.h"
#include "core/workload.h"
#include "obs/bench_compare.h"
#include "obs/bench_json.h"
#include "obs/json.h"
#include "obs/metrics/metrics.h"
#include "obs/metrics_json.h"
#include "obs/serialize.h"
#include "obs/stall_report.h"
#include "obs/trace_writer.h"
#include "sim/stats.h"

namespace dba::obs {
namespace {

// --- JSON document model ---

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue root = JsonValue::Object();
  root.Set("string", "hello \"quoted\" \\ <\n\t>")
      .Set("int", uint64_t{9007199254740992ull - 1})  // 2^53 - 1
      .Set("negative", -42)
      .Set("fraction", 0.25)
      .Set("flag", true)
      .Set("empty_array", JsonValue::Array())
      .Set("nested",
           JsonValue::Object().Set(
               "list", JsonValue::Array().Push(1).Push("two").Push(false)));

  for (int indent : {0, 2}) {
    auto parsed = JsonValue::Parse(root.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Dump(), root.Dump());
    EXPECT_EQ(parsed->at("string").as_string(), "hello \"quoted\" \\ <\n\t>");
    EXPECT_EQ(parsed->at("int").as_u64(), 9007199254740991ull);
    EXPECT_EQ(parsed->at("negative").as_double(), -42.0);
    EXPECT_EQ(parsed->at("nested").at("list").size(), 3u);
    EXPECT_EQ(parsed->at("nested").at("list").at(1).as_string(), "two");
  }
}

TEST(JsonTest, IntegralNumbersPrintWithoutFraction) {
  JsonValue root = JsonValue::Object();
  root.Set("cycles", uint64_t{123456789});
  EXPECT_NE(root.Dump().find("123456789"), std::string::npos);
  EXPECT_EQ(root.Dump().find("123456789.0"), std::string::npos);
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
        "{\"a\":1} trailing", "[1, 2", "nul"}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonTest, ParseHandlesUnicodeEscapes) {
  auto parsed = JsonValue::Parse("{\"s\": \"a\\u0041\\u00e9\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("s").as_string(), "aA\xc3\xa9");
}

// --- ExecStats::Accumulate (per-pc merge fix) ---

TEST(ExecStatsTest, AccumulateMergesPerPcVectorsElementWise) {
  sim::ExecStats a;
  a.cycles = 10;
  a.pc_counts = {1, 2};
  a.pc_cycles.resize(2);
  a.pc_cycles[0].issue_cycles = 1;
  a.trace = {"0 0000: nop"};

  sim::ExecStats b;
  b.cycles = 20;
  b.pc_counts = {10, 20, 30};
  b.pc_cycles.resize(3);
  b.pc_cycles[0].issue_cycles = 5;
  b.pc_cycles[2].load_stall_cycles = 7;
  b.trace = {"0 0000: other"};

  a.Accumulate(b);
  EXPECT_EQ(a.cycles, 30u);
  ASSERT_EQ(a.pc_counts.size(), 3u);
  EXPECT_EQ(a.pc_counts[0], 11u);
  EXPECT_EQ(a.pc_counts[1], 22u);
  EXPECT_EQ(a.pc_counts[2], 30u);
  ASSERT_EQ(a.pc_cycles.size(), 3u);
  EXPECT_EQ(a.pc_cycles[0].issue_cycles, 6u);
  EXPECT_EQ(a.pc_cycles[2].load_stall_cycles, 7u);
  // The rendered trace of one specific run is intentionally not merged.
  ASSERT_EQ(a.trace.size(), 1u);
  EXPECT_EQ(a.trace[0], "0 0000: nop");

  // Accumulating the smaller stats into the larger must not shrink.
  sim::ExecStats c;
  c.pc_counts = {100};
  b.Accumulate(c);
  ASSERT_EQ(b.pc_counts.size(), 3u);
  EXPECT_EQ(b.pc_counts[0], 110u);
}

// --- Stall attribution on a real profiled run ---

struct ProfiledRun {
  std::unique_ptr<Processor> processor;
  SetOpRun run;
  const isa::Program* program = nullptr;
};

ProfiledRun RunProfiledIntersect() {
  ProfiledRun out;
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis, {});
  EXPECT_TRUE(processor.ok());
  out.processor = *std::move(processor);
  auto pair = GenerateSetPair(512, 512, 0.5, 7);
  EXPECT_TRUE(pair.ok());
  RunSettings settings;
  settings.profile = true;
  auto run = out.processor->RunSetOperation(SetOp::kIntersect, pair->a,
                                            pair->b, settings);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  out.run = *std::move(run);
  auto program = out.processor->setop_program(SetOp::kIntersect, false);
  EXPECT_TRUE(program.ok());
  out.program = *program;
  return out;
}

TEST(StallReportTest, ComponentsSumToTotalCycles) {
  ProfiledRun profiled = RunProfiledIntersect();
  const StallReport report =
      BuildStallReport(*profiled.program, profiled.run.metrics.stats,
                       "DBA_2LSU_EIS", 2);
  EXPECT_GT(report.cycles, 0u);
  EXPECT_EQ(report.totals.total_cycles(), report.cycles);
  EXPECT_GT(report.totals.issue_cycles, 0u);
  // The EIS kernel moves data, so the beat counters must be live.
  EXPECT_GT(report.lsu_beats[0], 0u);
  EXPECT_GT(report.lsu_utilization[0], 0.0);
  EXPECT_LE(report.lsu_utilization[0], 1.0);
}

TEST(StallReportTest, LabelRowsSumToTotals) {
  ProfiledRun profiled = RunProfiledIntersect();
  const StallReport report =
      BuildStallReport(*profiled.program, profiled.run.metrics.stats,
                       "DBA_2LSU_EIS", 2);
  ASSERT_FALSE(report.labels.empty());
  StallComponents sum;
  uint64_t beats[2] = {0, 0};
  for (const LabelStallRow& row : report.labels) {
    EXPECT_FALSE(row.label.empty());
    sum.issue_cycles += row.components.issue_cycles;
    sum.branch_penalty_cycles += row.components.branch_penalty_cycles;
    sum.load_stall_cycles += row.components.load_stall_cycles;
    sum.store_stall_cycles += row.components.store_stall_cycles;
    sum.port_stall_cycles += row.components.port_stall_cycles;
    sum.ext_extra_cycles += row.components.ext_extra_cycles;
    beats[0] += row.lsu_beats[0];
    beats[1] += row.lsu_beats[1];
  }
  EXPECT_EQ(sum.total_cycles(), report.totals.total_cycles());
  EXPECT_EQ(sum.issue_cycles, report.totals.issue_cycles);
  EXPECT_EQ(beats[0], report.lsu_beats[0]);
  EXPECT_EQ(beats[1], report.lsu_beats[1]);
  // Rows are ordered most-expensive first.
  for (size_t i = 1; i < report.labels.size(); ++i) {
    EXPECT_GE(report.labels[i - 1].components.total_cycles(),
              report.labels[i].components.total_cycles());
  }
}

TEST(StallReportTest, JsonExportKeepsTheCycleInvariant) {
  ProfiledRun profiled = RunProfiledIntersect();
  const StallReport report =
      BuildStallReport(*profiled.program, profiled.run.metrics.stats,
                       "DBA_2LSU_EIS", 2);
  auto parsed = JsonValue::Parse(StallReportToJson(report).Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("schema").as_string(), kStallsSchema);
  const JsonValue& components = parsed->at("components");
  const uint64_t summed = components.at("issue_cycles").as_u64() +
                          components.at("branch_penalty_cycles").as_u64() +
                          components.at("load_stall_cycles").as_u64() +
                          components.at("store_stall_cycles").as_u64() +
                          components.at("port_stall_cycles").as_u64() +
                          components.at("ext_extra_cycles").as_u64();
  EXPECT_EQ(summed, parsed->at("cycles").as_u64());
  EXPECT_EQ(components.at("total_cycles").as_u64(),
            parsed->at("cycles").as_u64());
  EXPECT_GT(parsed->at("labels").size(), 0u);
}

TEST(SerializeTest, ExecStatsRoundTripThroughParser) {
  ProfiledRun profiled = RunProfiledIntersect();
  const sim::ExecStats& stats = profiled.run.metrics.stats;
  auto parsed = JsonValue::Parse(ExecStatsToJson(stats).Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("schema").as_string(), kExecStatsSchema);
  EXPECT_EQ(parsed->at("cycles").as_u64(), stats.cycles);
  EXPECT_EQ(parsed->at("bundles").as_u64(), stats.bundles);
  EXPECT_EQ(parsed->at("instructions").as_u64(), stats.instructions);
  EXPECT_EQ(parsed->at("lsu_beats").at(0).as_u64(), stats.lsu_beats[0]);
  EXPECT_EQ(parsed->at("lsu_beats").at(1).as_u64(), stats.lsu_beats[1]);
  EXPECT_EQ(parsed->at("pc_counts").size(), stats.pc_counts.size());
  EXPECT_EQ(parsed->at("mnemonic_counts").members().size(),
            stats.mnemonic_counts.size());
  // The debug trace is not part of the stable schema.
  EXPECT_TRUE(parsed->at("trace").is_null());
}

TEST(SerializeTest, ProfileReportSerializes) {
  ProfiledRun profiled = RunProfiledIntersect();
  const toolchain::ProfileReport report = toolchain::BuildProfile(
      *profiled.program, profiled.run.metrics.stats,
      profiled.processor->cpu().MakeExtNameResolver());
  auto parsed = JsonValue::Parse(ProfileReportToJson(report).Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("schema").as_string(), kProfileSchema);
  EXPECT_EQ(parsed->at("cycles").as_u64(),
            profiled.run.metrics.stats.cycles);
  EXPECT_GT(parsed->at("hotspots").size(), 0u);
  EXPECT_GT(parsed->at("instruction_mix").size(), 0u);
}

// --- Chrome trace-event output ---

// Checks structural validity of a Chrome trace-event document: a
// traceEvents array whose entries carry valid phases, non-decreasing
// timestamps, and balanced B/E pairs.
void ExpectValidChromeTrace(const JsonValue& root, size_t* num_slices) {
  ASSERT_TRUE(root.is_object());
  const JsonValue& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);
  uint64_t last_ts = 0;
  int depth = 0;
  size_t slices = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    ASSERT_TRUE(event.is_object());
    const std::string& phase = event.at("ph").as_string();
    ASSERT_TRUE(phase == "B" || phase == "E" || phase == "C" ||
                phase == "M")
        << "unexpected phase " << phase;
    EXPECT_TRUE(event.at("name").is_string());
    EXPECT_TRUE(event.at("pid").is_number());
    if (phase == "M") continue;
    ASSERT_TRUE(event.at("ts").is_number());
    const uint64_t ts = event.at("ts").as_u64();
    EXPECT_GE(ts, last_ts) << "timestamps must not go backwards";
    last_ts = ts;
    if (phase == "B") {
      ++depth;
      ++slices;
    } else if (phase == "E") {
      ASSERT_GT(depth, 0) << "E without matching B";
      --depth;
    } else {
      ASSERT_TRUE(event.at("args").at("value").is_number());
    }
  }
  EXPECT_EQ(depth, 0) << "every B needs its E";
  *num_slices = slices;
}

TEST(TraceTest, ProfiledRunEmitsValidChromeTrace) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis, {});
  ASSERT_TRUE(processor.ok());
  auto pair = GenerateSetPair(256, 256, 0.5, 11);
  ASSERT_TRUE(pair.ok());
  ChromeTraceWriter writer("DBA_2LSU_EIS");
  RunSettings settings;
  settings.trace_sink = &writer;
  auto run = (*processor)->RunSetOperation(SetOp::kIntersect, pair->a,
                                           pair->b, settings);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GT(writer.event_count(), 0u);

  // The document must survive its own serialization.
  auto parsed = JsonValue::Parse(writer.ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  size_t slices = 0;
  ExpectValidChromeTrace(*parsed, &slices);
  // At least the kernel-phase slice plus one label region.
  EXPECT_GE(slices, 2u);

  // Counter tracks for the stall categories and LSU beats are present.
  bool saw_beat_counter = false;
  bool saw_stall_counter = false;
  const JsonValue& events = parsed->at("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const std::string& name = events.at(i).at("name").as_string();
    if (events.at(i).at("ph").as_string() != "C") continue;
    if (name.find("beats") != std::string::npos) saw_beat_counter = true;
    if (name.find("stall/") != std::string::npos) saw_stall_counter = true;
  }
  EXPECT_TRUE(saw_beat_counter);
  EXPECT_TRUE(saw_stall_counter);
}

TEST(TraceTest, DanglingRegionsAreClosedAtLastTimestamp) {
  ChromeTraceWriter writer;
  writer.BeginRegion(0, "outer");
  writer.BeginRegion(5, "inner");
  writer.Counter(7, "stall/load", 3);
  // No EndRegion calls: an aborted run leaves both regions open.
  auto parsed = JsonValue::Parse(writer.ToJson().Dump());
  ASSERT_TRUE(parsed.ok());
  size_t slices = 0;
  ExpectValidChromeTrace(*parsed, &slices);
  EXPECT_EQ(slices, 2u);
}

TEST(TraceTest, UnbalancedEndIsDropped) {
  ChromeTraceWriter writer;
  writer.EndRegion(3);  // no open region; must not corrupt the stream
  writer.BeginRegion(4, "r");
  writer.EndRegion(9);
  auto parsed = JsonValue::Parse(writer.ToJson().Dump());
  ASSERT_TRUE(parsed.ok());
  size_t slices = 0;
  ExpectValidChromeTrace(*parsed, &slices);
  EXPECT_EQ(slices, 1u);
}

TEST(TraceTest, WriteToProducesReadableFile) {
  const std::string path = testing::TempDir() + "/obs_test.trace.json";
  auto processor = Processor::Create(ProcessorKind::kDba1LsuEis, {});
  ASSERT_TRUE(processor.ok());
  auto pair = GenerateSetPair(64, 64, 0.5, 3);
  ASSERT_TRUE(pair.ok());
  ChromeTraceWriter writer("DBA_1LSU_EIS");
  RunSettings settings;
  settings.trace_sink = &writer;
  auto run = (*processor)->RunSetOperation(SetOp::kUnion, pair->a, pair->b,
                                           settings);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(writer.WriteTo(path).ok());
  auto readback = ReadJsonFile(path);
  ASSERT_TRUE(readback.ok()) << readback.status().ToString();
  size_t slices = 0;
  ExpectValidChromeTrace(*readback, &slices);
}

// --- dba.bench.v1 ---

TEST(BenchJsonTest, WriterProducesValidDocument) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis, {});
  ASSERT_TRUE(processor.ok());
  auto pair = GenerateSetPair(128, 128, 0.5, 5);
  ASSERT_TRUE(pair.ok());
  auto run = (*processor)->RunSetOperation(SetOp::kIntersect, pair->a,
                                           pair->b);
  ASSERT_TRUE(run.ok());

  BenchJsonWriter writer("unit_test_bench");
  JsonValue& row = writer.AddRow("DBA_2LSU_EIS");
  row.Set("op", "intersect");
  MergeRunMetrics(row, run->metrics);
  ASSERT_EQ(writer.row_count(), 1u);

  const JsonValue document = writer.ToJson();
  ASSERT_TRUE(ValidateBenchJson(document).ok());
  const JsonValue& out = document.at("results").at(0);
  EXPECT_EQ(out.at("config").as_string(), "DBA_2LSU_EIS");
  EXPECT_EQ(out.at("cycles").as_u64(), run->metrics.cycles);
  // The embedded cycle breakdown keeps the CPI invariant.
  EXPECT_EQ(out.at("cycle_breakdown").at("total_cycles").as_u64(),
            run->metrics.cycles);
}

TEST(BenchJsonTest, FileRoundTripValidates) {
  const std::string path = testing::TempDir() + "/BENCH_obs_test.json";
  BenchJsonWriter writer("obs_test");
  writer.AddRow("108Mini").Set("op", "sort").Set("throughput_meps", 1.7);
  ASSERT_TRUE(writer.WriteTo(path).ok());
  auto readback = ReadJsonFile(path);
  ASSERT_TRUE(readback.ok()) << readback.status().ToString();
  EXPECT_TRUE(ValidateBenchJson(*readback).ok());
  EXPECT_EQ(readback->at("bench").as_string(), "obs_test");
}

TEST(BenchJsonTest, ValidatorRejectsBadDocuments) {
  // Wrong schema tag.
  auto bad = JsonValue::Parse(
      "{\"schema\":\"dba.bench.v0\",\"bench\":\"x\",\"results\":[]}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateBenchJson(*bad).ok());

  // Missing bench name.
  bad = JsonValue::Parse("{\"schema\":\"dba.bench.v1\",\"results\":[]}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateBenchJson(*bad).ok());

  // Row without a config.
  bad = JsonValue::Parse(
      "{\"schema\":\"dba.bench.v1\",\"bench\":\"x\","
      "\"results\":[{\"op\":\"intersect\"}]}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateBenchJson(*bad).ok());

  // Null value inside a row.
  bad = JsonValue::Parse(
      "{\"schema\":\"dba.bench.v1\",\"bench\":\"x\","
      "\"results\":[{\"config\":\"c\",\"value\":null}]}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateBenchJson(*bad).ok());

  // Results must be an array.
  bad = JsonValue::Parse(
      "{\"schema\":\"dba.bench.v1\",\"bench\":\"x\",\"results\":{}}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateBenchJson(*bad).ok());

  // A well-formed document passes.
  auto good = JsonValue::Parse(
      "{\"schema\":\"dba.bench.v1\",\"bench\":\"x\","
      "\"results\":[{\"config\":\"c\",\"cycles\":12}]}");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(ValidateBenchJson(*good).ok());
}

TEST(BenchJsonTest, AttachedMetricsSnapshotValidates) {
  BenchJsonWriter writer("metrics_embed");
  writer.AddRow("DBA_2LSU_EIS").Set("op", "intersect").Set("cycles", 10);
  MetricsRegistry registry;
  registry.GetCounter("embed_total")->Increment(4);
  registry.GetHistogram("embed_cycles")->Observe(123);
  writer.AttachMetrics(MetricsSnapshotToJson(registry.Snapshot()));
  const JsonValue document = writer.ToJson();
  ASSERT_TRUE(ValidateBenchJson(document).ok());
  EXPECT_EQ(document.at("metrics").at("schema").as_string(),
            "dba.metrics.v1");
  EXPECT_EQ(document.at("metrics").at("counters").at("embed_total").as_u64(),
            4u);
}

TEST(BenchJsonTest, InvalidAttachedMetricsAreRejected) {
  BenchJsonWriter writer("metrics_embed");
  writer.AddRow("DBA_2LSU_EIS").Set("cycles", 10);
  auto bogus = JsonValue::Parse("{\"schema\":\"dba.metrics.v0\"}");
  ASSERT_TRUE(bogus.ok());
  writer.AttachMetrics(*bogus);
  EXPECT_FALSE(ValidateBenchJson(writer.ToJson()).ok());
}

// --- compare-bench: absent-vs-zero semantics ---

namespace {

Result<JsonValue> CompareDoc(const char* results) {
  return JsonValue::Parse(
      std::string("{\"schema\":\"dba.bench.v1\",\"bench\":\"b\","
                  "\"results\":[") +
      results + "]}");
}

}  // namespace

TEST(BenchCompareTest, MissingMetricIsToleratedByDefault) {
  auto baseline = CompareDoc(
      "{\"config\":\"c\",\"cores\":1,\"throughput_meps\":100.0,"
      "\"sim_speedup\":2.0}");
  // The run predates the sim_speedup column: absent, not zero.
  auto run = CompareDoc("{\"config\":\"c\",\"cores\":1,"
                        "\"throughput_meps\":100.0}");
  ASSERT_TRUE(baseline.ok() && run.ok());
  auto comparison = CompareBenchDocuments(*run, *baseline, {});
  ASSERT_TRUE(comparison.ok()) << comparison.status().ToString();
  EXPECT_TRUE(comparison->passed());
  EXPECT_EQ(comparison->regressions, 0);
  ASSERT_EQ(comparison->tolerated.size(), 1u);
  EXPECT_NE(comparison->tolerated[0].find("sim_speedup"), std::string::npos);
  // The present metric was still compared.
  ASSERT_EQ(comparison->deltas.size(), 1u);
  EXPECT_EQ(comparison->deltas[0].metric, "throughput_meps");
}

TEST(BenchCompareTest, StrictModeFailsMissingMetrics) {
  auto baseline = CompareDoc(
      "{\"config\":\"c\",\"cores\":1,\"throughput_meps\":100.0,"
      "\"sim_speedup\":2.0}");
  auto run = CompareDoc("{\"config\":\"c\",\"cores\":1,"
                        "\"throughput_meps\":100.0}");
  ASSERT_TRUE(baseline.ok() && run.ok());
  BenchCompareOptions options;
  options.strict = true;
  auto comparison = CompareBenchDocuments(*run, *baseline, options);
  ASSERT_TRUE(comparison.ok());
  EXPECT_FALSE(comparison->passed());
  EXPECT_EQ(comparison->regressions, 1);
  EXPECT_TRUE(comparison->tolerated.empty());
}

TEST(BenchCompareTest, RealRegressionsStillFailInTolerantMode) {
  auto baseline = CompareDoc(
      "{\"config\":\"c\",\"cores\":1,\"throughput_meps\":100.0}");
  auto run = CompareDoc(
      "{\"config\":\"c\",\"cores\":1,\"throughput_meps\":50.0}");
  ASSERT_TRUE(baseline.ok() && run.ok());
  auto comparison = CompareBenchDocuments(*run, *baseline, {});
  ASSERT_TRUE(comparison.ok());
  EXPECT_FALSE(comparison->passed());
  EXPECT_EQ(comparison->regressions, 1);
}

TEST(BenchCompareTest, UnknownRunOnlyMetricsAreIgnored) {
  // Extra columns in the run that the baseline does not track are fine.
  auto baseline = CompareDoc(
      "{\"config\":\"c\",\"cores\":1,\"throughput_meps\":100.0}");
  auto run = CompareDoc(
      "{\"config\":\"c\",\"cores\":1,\"throughput_meps\":101.0,"
      "\"brand_new_metric\":7.0}");
  ASSERT_TRUE(baseline.ok() && run.ok());
  auto comparison = CompareBenchDocuments(*run, *baseline, {});
  ASSERT_TRUE(comparison.ok());
  EXPECT_TRUE(comparison->passed());
  EXPECT_TRUE(comparison->tolerated.empty());
}

}  // namespace
}  // namespace dba::obs
