#include <gtest/gtest.h>

#include "mem/memory.h"

namespace dba::mem {
namespace {

Memory MakeMemory(uint64_t base = 0x1000, uint64_t size = 256,
                  uint32_t latency = 1) {
  auto memory = Memory::Create(
      {.name = "test", .base = base, .size = size, .access_latency = latency});
  return *std::move(memory);
}

TEST(MemoryTest, CreateValidatesConfig) {
  EXPECT_FALSE(Memory::Create({.name = "m", .base = 0, .size = 0}).ok());
  EXPECT_FALSE(Memory::Create({.name = "m", .base = 0, .size = 20}).ok());
  EXPECT_FALSE(Memory::Create({.name = "m", .base = 8, .size = 32}).ok());
  EXPECT_FALSE(Memory::Create(
                   {.name = "m", .base = 0, .size = 32, .access_latency = 0})
                   .ok());
  EXPECT_TRUE(Memory::Create({.name = "m", .base = 16, .size = 32}).ok());
}

TEST(MemoryTest, WordRoundTrip) {
  Memory memory = MakeMemory();
  ASSERT_TRUE(memory.StoreU32(0x1000, 0xDEADBEEF).ok());
  ASSERT_TRUE(memory.StoreU32(0x10FC, 42).ok());
  EXPECT_EQ(*memory.LoadU32(0x1000), 0xDEADBEEFu);
  EXPECT_EQ(*memory.LoadU32(0x10FC), 42u);
  EXPECT_EQ(*memory.LoadU32(0x1004), 0u);  // zero-initialized
}

TEST(MemoryTest, WordBoundsAndAlignment) {
  Memory memory = MakeMemory();
  EXPECT_EQ(memory.LoadU32(0x0FFC).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(memory.LoadU32(0x1100).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(memory.LoadU32(0x1002).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(memory.StoreU32(0x1100, 1).ok());
}

TEST(MemoryTest, BeatRoundTrip) {
  Memory memory = MakeMemory();
  const Beat128 beat = {1, 2, 3, 4};
  ASSERT_TRUE(memory.Store128(0x1010, beat).ok());
  EXPECT_EQ(*memory.Load128(0x1010), beat);
  // Little-endian word overlap.
  EXPECT_EQ(*memory.LoadU32(0x1014), 2u);
}

TEST(MemoryTest, BeatAlignmentEnforced) {
  Memory memory = MakeMemory();
  EXPECT_FALSE(memory.Load128(0x1008).ok());
  EXPECT_FALSE(memory.Store128(0x1004, Beat128{}).ok());
}

TEST(MemoryTest, BlockRoundTrip) {
  Memory memory = MakeMemory();
  const std::vector<uint32_t> values = {9, 8, 7, 6, 5};
  ASSERT_TRUE(memory.WriteBlock(0x1004, values).ok());
  EXPECT_EQ(*memory.ReadBlock(0x1004, 5), values);
  EXPECT_FALSE(memory.WriteBlock(0x10F8, values).ok());  // overruns
}

TEST(MemoryTest, FlipBitTogglesOneBit) {
  Memory memory = MakeMemory();
  ASSERT_TRUE(memory.StoreU32(0x1008, 0b1010).ok());
  ASSERT_TRUE(memory.FlipBit(0x1008, 0).ok());
  EXPECT_EQ(*memory.LoadU32(0x1008), 0b1011u);
  ASSERT_TRUE(memory.FlipBit(0x1008, 31).ok());
  EXPECT_EQ(*memory.LoadU32(0x1008), 0x8000000Bu);
  // Flipping twice restores the word.
  ASSERT_TRUE(memory.FlipBit(0x1008, 31).ok());
  ASSERT_TRUE(memory.FlipBit(0x1008, 0).ok());
  EXPECT_EQ(*memory.LoadU32(0x1008), 0b1010u);
}

TEST(MemoryTest, FlipBitValidates) {
  Memory memory = MakeMemory();
  EXPECT_EQ(memory.FlipBit(0x1000, 32).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(memory.FlipBit(0x1002, 0).ok());  // misaligned
  EXPECT_FALSE(memory.FlipBit(0x2000, 0).ok());  // out of range
}

TEST(MemoryTest, ClearZeroes) {
  Memory memory = MakeMemory();
  ASSERT_TRUE(memory.StoreU32(0x1000, 7).ok());
  memory.Clear();
  EXPECT_EQ(*memory.LoadU32(0x1000), 0u);
}

TEST(MemoryTest, Contains) {
  Memory memory = MakeMemory();
  EXPECT_TRUE(memory.Contains(0x1000));
  EXPECT_TRUE(memory.Contains(0x10FF));
  EXPECT_TRUE(memory.Contains(0x10F0, 16));
  EXPECT_FALSE(memory.Contains(0x10F0, 17));
  EXPECT_FALSE(memory.Contains(0xFFF));
}

TEST(MemorySystemTest, RoutesByAddress) {
  Memory low = MakeMemory(0x1000, 256);
  Memory high = MakeMemory(0x2000, 256);
  MemorySystem system;
  ASSERT_TRUE(system.AddRegion(&low).ok());
  ASSERT_TRUE(system.AddRegion(&high).ok());
  EXPECT_EQ(*system.Route(0x1000), &low);
  EXPECT_EQ(*system.Route(0x20F0, 16), &high);
  EXPECT_EQ(system.Route(0x3000).status().code(), StatusCode::kNotFound);
  // Access straddling the end of a region does not route.
  EXPECT_FALSE(system.Route(0x10FC, 16).ok());
}

TEST(MemorySystemTest, RejectsOverlap) {
  Memory first = MakeMemory(0x1000, 256);
  Memory overlapping = MakeMemory(0x1080, 256);
  Memory adjacent = MakeMemory(0x1100, 64);
  MemorySystem system;
  ASSERT_TRUE(system.AddRegion(&first).ok());
  EXPECT_EQ(system.AddRegion(&overlapping).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(system.AddRegion(&adjacent).ok());
}

}  // namespace
}  // namespace dba::mem
