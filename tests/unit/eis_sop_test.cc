// Unit tests of the SOP comparator semantics, the compare-exchange
// networks, and the datapath FIFO -- the "dedicated unit test for each
// newly introduced instruction ... especially considering corner cases"
// of the paper's verification flow (Section 3.1).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "eis/fifo.h"
#include "eis/networks.h"
#include "eis/sop.h"

namespace dba::eis {
namespace {

Window MakeWindow(std::initializer_list<uint32_t> values) {
  Window window;
  for (uint32_t value : values) window.Push(value);
  return window;
}

std::vector<uint32_t> Emitted(const SopOutcome& outcome) {
  return {outcome.emit.begin(),
          outcome.emit.begin() + outcome.emit_count};
}

// --- Window ---

TEST(WindowTest, PushAndConsume) {
  Window window = MakeWindow({1, 3, 5});
  EXPECT_EQ(window.count, 3);
  EXPECT_EQ(window.max(), 5u);
  window.Consume(2);
  EXPECT_EQ(window.count, 1);
  EXPECT_EQ(window.lanes[0], 5u);
  window.Consume(0);
  EXPECT_EQ(window.count, 1);
  window.Consume(1);
  EXPECT_TRUE(window.empty());
}

TEST(WindowTest, FullAndEmpty) {
  Window window;
  EXPECT_TRUE(window.empty());
  for (uint32_t v : {1u, 2u, 3u, 4u}) window.Push(v);
  EXPECT_TRUE(window.full());
}

// --- ComputeSop: intersection ---

TEST(SopIntersectTest, DisjointConsumesSmallerSide) {
  const Window a = MakeWindow({1, 2, 3, 4});
  const Window b = MakeWindow({10, 20, 30, 40});
  const SopOutcome outcome = ComputeSop(SopMode::kIntersect, a, false, b, false);
  EXPECT_EQ(outcome.consume_a, 4);
  EXPECT_EQ(outcome.consume_b, 0);
  EXPECT_EQ(outcome.emit_count, 0);
  EXPECT_EQ(outcome.matches, 0);
}

TEST(SopIntersectTest, IdenticalWindowsConsumeBothEmitFour) {
  const Window a = MakeWindow({5, 6, 7, 8});
  const Window b = MakeWindow({5, 6, 7, 8});
  const SopOutcome outcome = ComputeSop(SopMode::kIntersect, a, false, b, false);
  EXPECT_EQ(outcome.consume_a, 4);
  EXPECT_EQ(outcome.consume_b, 4);
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{5, 6, 7, 8}));
  EXPECT_EQ(outcome.matches, 4);
}

TEST(SopIntersectTest, InterleavedPartialMatch) {
  const Window a = MakeWindow({1, 4, 6, 9});
  const Window b = MakeWindow({2, 4, 9, 12});
  const SopOutcome outcome = ComputeSop(SopMode::kIntersect, a, false, b, false);
  // A consumes everything <= 12; B consumes everything <= 9.
  EXPECT_EQ(outcome.consume_a, 4);
  EXPECT_EQ(outcome.consume_b, 3);
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{4, 9}));
}

TEST(SopIntersectTest, EmptyOtherWindowAwaitingRefillConsumesNothing) {
  const Window a = MakeWindow({1, 2, 3, 4});
  const Window b;  // empty, stream NOT drained
  const SopOutcome outcome = ComputeSop(SopMode::kIntersect, a, false, b, false);
  EXPECT_EQ(outcome.consume_a, 0);
  EXPECT_EQ(outcome.consume_b, 0);
  EXPECT_EQ(outcome.emit_count, 0);
}

TEST(SopIntersectTest, DrainedOtherSideReleasesEverything) {
  const Window a = MakeWindow({1, 2, 3, 4});
  const Window b;  // empty, stream drained
  const SopOutcome outcome = ComputeSop(SopMode::kIntersect, a, false, b, true);
  EXPECT_EQ(outcome.consume_a, 4);
  EXPECT_EQ(outcome.emit_count, 0);
}

TEST(SopIntersectTest, BothEmpty) {
  const Window a;
  const Window b;
  const SopOutcome outcome = ComputeSop(SopMode::kIntersect, a, true, b, true);
  EXPECT_EQ(outcome.consume_a, 0);
  EXPECT_EQ(outcome.consume_b, 0);
  EXPECT_EQ(outcome.emit_count, 0);
}

// --- ComputeSop: union ---

TEST(SopUnionTest, MergesAndDeduplicates) {
  const Window a = MakeWindow({1, 3, 5, 7});
  const Window b = MakeWindow({3, 4, 5, 6});
  const SopOutcome outcome = ComputeSop(SopMode::kUnion, a, false, b, false);
  // Result states cap emission at 4: 1,3,4,5 -- consumption truncates.
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{1, 3, 4, 5}));
  EXPECT_EQ(outcome.consume_a, 3);  // 1, 3, 5
  EXPECT_EQ(outcome.consume_b, 3);  // 3, 4, 5
  EXPECT_EQ(outcome.matches, 2);
}

TEST(SopUnionTest, EmissionCapStopsBeforeFifthValue) {
  const Window a = MakeWindow({1, 2, 3, 4});
  const Window b = MakeWindow({5, 6, 7, 8});
  const SopOutcome outcome = ComputeSop(SopMode::kUnion, a, false, b, false);
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{1, 2, 3, 4}));
  EXPECT_EQ(outcome.consume_a, 4);
  EXPECT_EQ(outcome.consume_b, 0);  // 5..8 wait for the next SOP
}

TEST(SopUnionTest, TailOfDrainedSide) {
  const Window a = MakeWindow({7, 9});
  const Window b;  // drained
  const SopOutcome outcome = ComputeSop(SopMode::kUnion, a, false, b, true);
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{7, 9}));
  EXPECT_EQ(outcome.consume_a, 2);
}

// --- ComputeSop: difference ---

TEST(SopDifferenceTest, SuppressesMatches) {
  const Window a = MakeWindow({1, 4, 6, 9});
  const Window b = MakeWindow({4, 6, 10, 12});
  const SopOutcome outcome =
      ComputeSop(SopMode::kDifference, a, false, b, false);
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{1, 9}));
  EXPECT_EQ(outcome.consume_a, 4);
  EXPECT_EQ(outcome.consume_b, 2);  // 4, 6 (<= amax 9)
  EXPECT_EQ(outcome.matches, 2);
}

TEST(SopDifferenceTest, BSmallerElementsConsumedSilently) {
  const Window a = MakeWindow({10, 11});
  const Window b = MakeWindow({1, 2, 3, 4});
  const SopOutcome outcome =
      ComputeSop(SopMode::kDifference, a, false, b, false);
  EXPECT_EQ(outcome.consume_a, 0);  // amax 11 > bmax 4
  EXPECT_EQ(outcome.consume_b, 4);
  EXPECT_EQ(outcome.emit_count, 0);
}

// --- ComputeSop: merge ---

TEST(SopMergeTest, KeepsDuplicates) {
  const Window a = MakeWindow({2, 2});
  const Window b = MakeWindow({2, 3});
  const SopOutcome outcome = ComputeSop(SopMode::kMerge, a, false, b, false);
  // B's 3 exceeds amax = 2 and must stay: a future A element could
  // still be a duplicate 2 that sorts before it.
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{2, 2, 2}));
  EXPECT_EQ(outcome.consume_a, 2);
  EXPECT_EQ(outcome.consume_b, 1);
}

TEST(SopMergeTest, MatchedPairNeedsTwoResultSlots) {
  const Window a = MakeWindow({1, 2, 5, 5});
  const Window b = MakeWindow({5, 6, 7, 8});
  const SopOutcome outcome = ComputeSop(SopMode::kMerge, a, false, b, false);
  // 1, 2 emitted; then the 5==5 pair would need slots 3 and 4: emits
  // both; the second 5 of A would overflow -> truncation.
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{1, 2, 5, 5}));
  EXPECT_EQ(outcome.consume_a + outcome.consume_b, 4);
}

TEST(SopMergeTest, EmitsLowerFourOfFullWindows) {
  const Window a = MakeWindow({1, 3, 5, 7});
  const Window b = MakeWindow({2, 4, 6, 8});
  const SopOutcome outcome = ComputeSop(SopMode::kMerge, a, false, b, false);
  EXPECT_EQ(Emitted(outcome), (std::vector<uint32_t>{1, 2, 3, 4}));
  EXPECT_EQ(outcome.consume_a, 2);
  EXPECT_EQ(outcome.consume_b, 2);
}

// --- ComputeSop invariants (randomized) ---

TEST(SopInvariantsTest, RandomizedWindows) {
  Random rng(77);
  for (int trial = 0; trial < 5000; ++trial) {
    auto make = [&rng](bool allow_dups) {
      Window window;
      const int n = static_cast<int>(rng.Uniform(5));
      uint32_t value = static_cast<uint32_t>(rng.Uniform(20));
      for (int i = 0; i < n; ++i) {
        window.Push(value);
        value += allow_dups ? static_cast<uint32_t>(rng.Uniform(3))
                            : 1 + static_cast<uint32_t>(rng.Uniform(3));
      }
      return window;
    };
    const auto mode = static_cast<SopMode>(rng.Uniform(4));
    const bool dups = mode == SopMode::kMerge;
    const Window a = make(dups);
    const Window b = make(dups);
    const bool a_drained = a.empty() && rng.Bernoulli(0.5);
    const bool b_drained = b.empty() && rng.Bernoulli(0.5);
    const SopOutcome outcome = ComputeSop(mode, a, a_drained, b, b_drained);

    // Consumption is a prefix within bounds.
    ASSERT_GE(outcome.consume_a, 0);
    ASSERT_LE(outcome.consume_a, a.count);
    ASSERT_GE(outcome.consume_b, 0);
    ASSERT_LE(outcome.consume_b, b.count);
    // Result states never overflow.
    ASSERT_LE(outcome.emit_count, 4);
    // Emission is sorted.
    for (int i = 1; i < outcome.emit_count; ++i) {
      ASSERT_LE(outcome.emit[static_cast<size_t>(i - 1)],
                outcome.emit[static_cast<size_t>(i)]);
    }
    // Progress: if both windows hold data, something is consumed.
    if (!a.empty() && !b.empty()) {
      ASSERT_GT(outcome.consume_a + outcome.consume_b, 0);
    }
    // Remaining elements are strictly greater than anything emitted.
    if (outcome.emit_count > 0) {
      const uint32_t last = outcome.emit[static_cast<size_t>(
          outcome.emit_count - 1)];
      if (outcome.consume_a < a.count) {
        ASSERT_GE(a.lanes[static_cast<size_t>(outcome.consume_a)], last);
      }
      if (outcome.consume_b < b.count) {
        ASSERT_GE(b.lanes[static_cast<size_t>(outcome.consume_b)], last);
      }
    }
  }
}

// --- Networks ---

TEST(NetworksTest, SortNetwork4AllPermutations) {
  std::array<uint32_t, 4> base = {1, 2, 3, 4};
  std::sort(base.begin(), base.end());
  std::array<uint32_t, 4> perm = base;
  do {
    std::array<uint32_t, 4> values = perm;
    SortNetwork4(values);
    EXPECT_EQ(values, base);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(NetworksTest, SortNetwork4Duplicates) {
  std::array<uint32_t, 4> values = {7, 7, 1, 7};
  SortNetwork4(values);
  EXPECT_EQ(values, (std::array<uint32_t, 4>{1, 7, 7, 7}));
}

TEST(NetworksTest, MergeNetworkRandomized) {
  Random rng(4);
  for (int trial = 0; trial < 2000; ++trial) {
    std::array<uint32_t, 4> lo;
    std::array<uint32_t, 4> hi;
    for (auto& v : lo) v = static_cast<uint32_t>(rng.Uniform(100));
    for (auto& v : hi) v = static_cast<uint32_t>(rng.Uniform(100));
    std::sort(lo.begin(), lo.end());
    std::sort(hi.begin(), hi.end());
    std::array<uint32_t, 8> expected;
    std::merge(lo.begin(), lo.end(), hi.begin(), hi.end(), expected.begin());
    MergeNetwork4x4(lo, hi);
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(lo[static_cast<size_t>(i)], expected[static_cast<size_t>(i)]);
      ASSERT_EQ(hi[static_cast<size_t>(i)],
                expected[static_cast<size_t>(i + 4)]);
    }
  }
}

// --- SmallFifo ---

TEST(FifoTest, PushPopOrder) {
  SmallFifo<uint32_t, 4> fifo;
  EXPECT_TRUE(fifo.empty());
  fifo.Push(1);
  fifo.Push(2);
  fifo.Push(3);
  EXPECT_EQ(fifo.size(), 3);
  EXPECT_EQ(fifo.Peek(), 1u);
  EXPECT_EQ(fifo.Peek(2), 3u);
  EXPECT_EQ(fifo.Pop(), 1u);
  EXPECT_EQ(fifo.Pop(), 2u);
  fifo.Push(4);
  fifo.Push(5);
  fifo.Push(6);
  EXPECT_TRUE(fifo.full());
  EXPECT_EQ(fifo.Pop(), 3u);
  EXPECT_EQ(fifo.Pop(), 4u);
  EXPECT_EQ(fifo.Pop(), 5u);
  EXPECT_EQ(fifo.Pop(), 6u);
  EXPECT_TRUE(fifo.empty());
}

TEST(FifoTest, WrapAroundManyTimes) {
  SmallFifo<uint32_t, 3> fifo;
  for (uint32_t i = 0; i < 100; ++i) {
    fifo.Push(i);
    EXPECT_EQ(fifo.Pop(), i);
  }
}

TEST(FifoTest, ClearResets) {
  SmallFifo<uint32_t, 2> fifo;
  fifo.Push(1);
  fifo.Clear();
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(fifo.space(), 2);
}

}  // namespace
}  // namespace dba::eis
