// QueryService unit suite (ctest label `service`): admission control
// and load shedding, per-tenant priority ordering, batch-window
// coalescing under the virtual clock, batched-result byte-identity to
// serial execution, in-batch deduplication, and the version-validated
// result cache (recompute after mutation, pinned LRU eviction order,
// counter agreement). Deterministic: time only moves when the test
// advances the VirtualClock.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "obs/metrics/metrics.h"
#include "query/predicate.h"
#include "query/table.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "service/result_cache.h"
#include "service/service_clock.h"
#include "shared/service_test_util.h"
#include "system/board.h"

namespace dba::service {
namespace {

constexpr uint64_t kTableSeed = 20140622;
constexpr uint32_t kRows = 1024;

std::unique_ptr<system::Board> MakeBoard(int num_cores, int host_threads) {
  system::BoardConfig config;
  config.num_cores = num_cores;
  config.host_threads = host_threads;
  auto board = system::Board::Create(config);
  EXPECT_TRUE(board.ok()) << board.status();
  return *std::move(board);
}

std::unique_ptr<QueryService> MakeService(system::Board* board,
                                          ServiceConfig config) {
  config.board = board;
  auto service = QueryService::Create(config);
  EXPECT_TRUE(service.ok()) << service.status();
  return *std::move(service);
}

ServiceRequest PredicateRequest(
    std::shared_ptr<const query::Predicate> predicate,
    std::string tenant = "t0", int priority = 0) {
  ServiceRequest request;
  request.tenant = std::move(tenant);
  request.priority = priority;
  request.table = "orders";
  request.predicate = std::move(predicate);
  return request;
}

ServiceRequest DirectRequest(SetOp op, std::vector<uint32_t> a,
                             std::vector<uint32_t> b) {
  ServiceRequest request;
  request.tenant = "t0";
  request.op = op;
  request.a = std::move(a);
  request.b = std::move(b);
  return request;
}

// --- AdmissionQueue ---

TEST(AdmissionQueueTest, PriorityThenFifoOrder) {
  AdmissionQueue<int> queue(8);
  ASSERT_TRUE(queue.Push(0, 10).ok());
  ASSERT_TRUE(queue.Push(5, 20).ok());
  ASSERT_TRUE(queue.Push(0, 11).ok());
  ASSERT_TRUE(queue.Push(5, 21).ok());
  ASSERT_TRUE(queue.Push(2, 30).ok());
  std::vector<int> popped;
  int value = 0;
  while (queue.Pop(&value)) popped.push_back(value);
  EXPECT_EQ(popped, (std::vector<int>{20, 21, 30, 10, 11}));
  EXPECT_TRUE(queue.empty());
}

TEST(AdmissionQueueTest, OverflowIsExplicitUnavailable) {
  AdmissionQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(0, 1).ok());
  ASSERT_TRUE(queue.Push(0, 2).ok());
  const Status overflow = queue.Push(9, 3);
  EXPECT_EQ(overflow.code(), StatusCode::kUnavailable);
  EXPECT_EQ(queue.size(), 2u);  // high priority cannot displace queued work
}

// --- ResultCache ---

TEST(ResultCacheTest, StaleVersionNeverServed) {
  ResultCache cache(4);
  const std::vector<ColumnVersion> v1{{"t", "c", 1}};
  const std::vector<ColumnVersion> v2{{"t", "c", 2}};
  cache.Insert("k", {1, 2, 3}, v1);
  std::vector<uint32_t> out;
  ASSERT_TRUE(cache.Lookup("k", v1, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_FALSE(cache.Lookup("k", v2, &out));  // stale: dropped, miss
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResultCacheTest, LruEvictionOrderPinned) {
  ResultCache cache(2);
  const std::vector<ColumnVersion> v{{"t", "c", 1}};
  cache.Insert("a", {1}, v);
  cache.Insert("b", {2}, v);
  cache.Insert("c", {3}, v);  // evicts "a" (LRU)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.KeysMruToLru(), (std::vector<std::string>{"c", "b"}));
  std::vector<uint32_t> out;
  EXPECT_FALSE(cache.Lookup("a", v, &out));
  ASSERT_TRUE(cache.Lookup("b", v, &out));  // refreshes "b" to MRU
  EXPECT_EQ(cache.KeysMruToLru(), (std::vector<std::string>{"b", "c"}));
  cache.Insert("d", {4}, v);  // now "c" is LRU
  EXPECT_EQ(cache.KeysMruToLru(), (std::vector<std::string>{"d", "b"}));
}

TEST(ResultCacheTest, InvalidateColumnDropsDependents) {
  ResultCache cache(4);
  cache.Insert("q1", {1}, {{"t", "x", 1}});
  cache.Insert("q2", {2}, {{"t", "y", 1}});
  cache.Insert("q3", {3}, {{"t", "x", 1}, {"t", "y", 1}});
  cache.InvalidateColumn("t", "x");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.KeysMruToLru(), (std::vector<std::string>{"q2"}));
}

// --- VirtualClock ---

TEST(VirtualClockTest, AdvanceWakesRegisteredWaiter) {
  VirtualClock clock(0);
  std::mutex mu;
  std::condition_variable cv;
  clock.Watch(&mu, &cv);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (clock.NowNs() < 100) clock.WaitUntil(lock, cv, 100);
    woke = true;
  });
  clock.AdvanceTo(100);
  waiter.join();
  EXPECT_TRUE(woke);
  clock.AdvanceTo(50);  // never moves backward
  EXPECT_EQ(clock.NowNs(), 100u);
}

// --- QueryService ---

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() : board_(MakeBoard(4, 2)) {}

  std::unique_ptr<QueryService> MakeOrdersService(ServiceConfig config) {
    auto service = MakeService(board_.get(), std::move(config));
    auto table = std::make_unique<query::Table>(
        test::MakeServiceTable("orders", kRows, kTableSeed));
    EXPECT_TRUE(service->RegisterTable(std::move(table)).ok());
    return service;
  }

  std::unique_ptr<system::Board> board_;
};

TEST_F(QueryServiceTest, AdmissionOverflowShedsWithUnavailable) {
  VirtualClock clock;
  ServiceConfig config;
  config.queue_capacity = 4;
  config.clock = &clock;
  auto service = MakeOrdersService(config);
  service->PauseDispatch();

  const auto pool = test::MakePredicatePool(8);
  std::vector<std::future<ServiceResponse>> futures;
  for (size_t i = 0; i < 4; ++i) {
    futures.push_back(service->Submit(PredicateRequest(pool[i])));
  }
  EXPECT_EQ(service->queue_depth(), 4u);
  // Queue-depth metric agrees with the service's own view.
  obs::Gauge* depth =
      obs::MetricsRegistry::Global().GetGauge("dba_service_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->Value(), 4.0);

  // Overflow: an explicit, immediate kUnavailable -- never a silent drop.
  auto rejected = service->Submit(PredicateRequest(pool[4]));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const ServiceResponse response = rejected.get();
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service->counters().rejected, 1u);
  EXPECT_EQ(service->counters().submitted, 5u);

  service->ResumeDispatch();
  service->Drain();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(depth->Value(), 0.0);
}

TEST_F(QueryServiceTest, PriorityOrderingUnderFullQueue) {
  ServiceConfig config;
  config.queue_capacity = 16;
  config.max_batch = 1;  // one request per dispatch: order is observable
  config.tenant_priorities["vip"] = 10;
  auto service = MakeOrdersService(config);
  service->PauseDispatch();

  const auto pool = test::MakePredicatePool(8);
  auto low0 = service->Submit(PredicateRequest(pool[0], "t0", 0));
  auto low1 = service->Submit(PredicateRequest(pool[1], "t0", 0));
  auto high = service->Submit(PredicateRequest(pool[2], "t0", 5));
  auto vip = service->Submit(PredicateRequest(pool[3], "vip", 0));  // 0+10
  auto mid = service->Submit(PredicateRequest(pool[4], "t0", 2));
  service->ResumeDispatch();
  service->Drain();

  const ServiceResponse r_low0 = low0.get();
  const ServiceResponse r_low1 = low1.get();
  const ServiceResponse r_high = high.get();
  const ServiceResponse r_vip = vip.get();
  const ServiceResponse r_mid = mid.get();
  for (const ServiceResponse* r :
       {&r_low0, &r_low1, &r_high, &r_vip, &r_mid}) {
    ASSERT_TRUE(r->status.ok()) << r->status;
    EXPECT_EQ(r->batch_size, 1u);
  }
  // Highest effective priority first; FIFO within a level.
  EXPECT_LT(r_vip.dispatch_seq, r_high.dispatch_seq);
  EXPECT_LT(r_high.dispatch_seq, r_mid.dispatch_seq);
  EXPECT_LT(r_mid.dispatch_seq, r_low0.dispatch_seq);
  EXPECT_LT(r_low0.dispatch_seq, r_low1.dispatch_seq);
}

TEST_F(QueryServiceTest, BatchWindowCoalescesExactly) {
  VirtualClock clock;
  ServiceConfig config;
  config.batch_window_ns = 1000;
  config.max_batch = 64;
  config.clock = &clock;
  auto service = MakeOrdersService(config);

  const auto pool = test::MakePredicatePool(6);
  std::vector<std::future<ServiceResponse>> futures;
  for (size_t i = 0; i < 6; ++i) {
    futures.push_back(service->Submit(PredicateRequest(pool[i])));
  }
  // All six are queued at t=0; the window closes at t=1000 and the
  // scheduler dispatches them as exactly one batch, whichever thread
  // interleaving got them there.
  clock.AdvanceTo(1000);
  service->Drain();
  for (auto& future : futures) {
    const ServiceResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(response.batch_size, 6u);
  }
  EXPECT_EQ(service->counters().batches, 1u);
  EXPECT_EQ(service->counters().dispatched, 6u);
}

TEST_F(QueryServiceTest, BatchedResultsByteIdenticalToSerial) {
  ServiceConfig config;
  config.max_batch = 32;
  auto service = MakeOrdersService(config);
  service->PauseDispatch();  // force everything into one batch

  test::SerialReference reference("orders", kRows, kTableSeed);
  Random rng(99);
  struct Expected {
    std::future<ServiceResponse> future;
    std::vector<uint32_t> values;
  };
  std::vector<Expected> cases;

  // Every direct set op, including merge with duplicates and empty sides.
  for (const SetOp op : {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference,
                         SetOp::kMerge}) {
    for (int i = 0; i < 3; ++i) {
      std::vector<uint32_t> a = test::MakeSortedSet(rng, 48, 2048);
      std::vector<uint32_t> b = test::MakeSortedSet(rng, 48, 2048);
      if (i == 2) b.clear();  // degenerate side
      auto expected = reference.Direct(op, a, b);
      ASSERT_TRUE(expected.ok()) << expected.status();
      Expected c;
      c.values = *expected;
      c.future = service->Submit(DirectRequest(op, std::move(a), std::move(b)));
      cases.push_back(std::move(c));
    }
  }
  // Predicate queries against the serial engine.
  const auto pool = test::MakePredicatePool(6);
  for (const auto& predicate : pool) {
    auto expected = reference.Select(*predicate);
    ASSERT_TRUE(expected.ok()) << expected.status();
    Expected c;
    c.values = *expected;
    c.future = service->Submit(PredicateRequest(predicate));
    cases.push_back(std::move(c));
  }

  service->ResumeDispatch();
  service->Drain();
  for (Expected& c : cases) {
    const ServiceResponse response = c.future.get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(response.values, c.values);
  }
}

TEST_F(QueryServiceTest, IdenticalRequestsDeduplicateWithinBatch) {
  ServiceConfig config;
  config.cache_capacity = 0;  // isolate dedup from the cache
  auto service = MakeOrdersService(config);
  service->PauseDispatch();

  const auto pool = test::MakePredicatePool(2);
  auto first = service->Submit(PredicateRequest(pool[0]));
  auto second = service->Submit(PredicateRequest(pool[0]));
  auto other = service->Submit(PredicateRequest(pool[1]));
  service->ResumeDispatch();
  service->Drain();

  const ServiceResponse r1 = first.get();
  const ServiceResponse r2 = second.get();
  const ServiceResponse r3 = other.get();
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  ASSERT_TRUE(r3.status.ok());
  EXPECT_EQ(r1.values, r2.values);
  EXPECT_FALSE(r1.deduplicated);
  EXPECT_TRUE(r2.deduplicated);
  EXPECT_FALSE(r3.deduplicated);
  EXPECT_EQ(service->counters().deduplicated, 1u);
}

TEST_F(QueryServiceTest, CacheServesRepeatsAndRecomputesAfterMutation) {
  auto service = MakeOrdersService(ServiceConfig{});
  test::SerialReference reference("orders", kRows, kTableSeed);
  const auto pool = test::MakePredicatePool(1);

  auto miss = service->Submit(PredicateRequest(pool[0]));
  service->Drain();
  const ServiceResponse first = miss.get();
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.values, *reference.Select(*pool[0]));

  auto hit = service->Submit(PredicateRequest(pool[0]));
  service->Drain();
  const ServiceResponse second = hit.get();
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.values, first.values);

  // Mutate the predicate's column: the cached result must never be
  // served again, and the recompute must see the new data.
  const auto new_region = test::MakeColumnValues("region", kRows, 4242);
  ASSERT_TRUE(service->UpdateColumn("orders", "region", new_region).ok());
  ASSERT_TRUE(reference.Update("region", new_region).ok());

  auto recompute = service->Submit(PredicateRequest(pool[0]));
  service->Drain();
  const ServiceResponse third = recompute.get();
  ASSERT_TRUE(third.status.ok()) << third.status;
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.values, *reference.Select(*pool[0]));

  const ServiceCounters counters = service->counters();
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_GE(counters.cache_invalidations, 1u);
}

TEST_F(QueryServiceTest, CacheEvictionOrderObservableViaKeys) {
  ServiceConfig config;
  config.cache_capacity = 2;
  auto service = MakeOrdersService(config);
  const auto pool = test::MakePredicatePool(3);
  std::vector<std::string> keys;
  for (const auto& predicate : pool) {
    keys.push_back("q|orders|" + predicate->ToString());
    service->Submit(PredicateRequest(predicate)).wait();
  }
  service->Drain();
  // Third insert evicted the first (LRU) entry.
  EXPECT_EQ(service->CacheKeysMruToLru(),
            (std::vector<std::string>{keys[2], keys[1]}));
  EXPECT_EQ(service->counters().cache_evictions, 1u);
}

TEST_F(QueryServiceTest, ExpiredDeadlineIsShedAtDispatch) {
  VirtualClock clock;
  ServiceConfig config;
  config.clock = &clock;
  auto service = MakeOrdersService(config);
  service->PauseDispatch();

  const auto pool = test::MakePredicatePool(1);
  ServiceRequest request = PredicateRequest(pool[0]);
  request.deadline_ns = 10;
  auto doomed = service->Submit(std::move(request));
  auto healthy = service->Submit(PredicateRequest(pool[0]));
  clock.AdvanceTo(100);
  service->ResumeDispatch();
  service->Drain();

  EXPECT_EQ(doomed.get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(healthy.get().status.ok());
  EXPECT_EQ(service->counters().shed, 1u);
}

TEST_F(QueryServiceTest, UnknownTableReportsNotFound) {
  auto service = MakeService(board_.get(), ServiceConfig{});
  const auto pool = test::MakePredicatePool(1);
  auto future = service->Submit(PredicateRequest(pool[0]));
  service->Drain();
  EXPECT_EQ(future.get().status.code(), StatusCode::kNotFound);
}

TEST_F(QueryServiceTest, ShutdownFailsPendingWithUnavailable) {
  auto service = MakeOrdersService(ServiceConfig{});
  service->PauseDispatch();
  const auto pool = test::MakePredicatePool(1);
  auto pending = service->Submit(PredicateRequest(pool[0]));
  service.reset();  // stops the scheduler with the job still queued
  const ServiceResponse response = pending.get();
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
}

TEST_F(QueryServiceTest, ConfigValidationRejectsBadValues) {
  EXPECT_EQ(QueryService::Create(ServiceConfig{}).status().code(),
            StatusCode::kInvalidArgument);  // no board
  ServiceConfig config;
  config.board = board_.get();
  config.max_batch = 0;
  EXPECT_EQ(QueryService::Create(config).status().code(),
            StatusCode::kInvalidArgument);
  config.max_batch = 1;
  config.queue_capacity = 0;
  EXPECT_EQ(QueryService::Create(config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dba::service
