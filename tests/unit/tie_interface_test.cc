// Tests of the TIE queue / lookup interfaces (paper Section 3.2: "TIE
// queues read or write data from external queues ... TIE lookups
// request data from external devices"), exercised through a demo
// extension: a dictionary-decode pipeline that pops encoded codes from
// an input queue, resolves them through an external dictionary lookup,
// and pushes decoded values to an output queue.

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/cpu.h"
#include "tie/tie_extension.h"
#include "tie/tie_interface.h"

namespace dba::tie {
namespace {

using isa::Assembler;
using isa::Reg;

// --- TieQueue in isolation ---

TEST(TieQueueTest, PushPopOrderAndBounds) {
  TieQueue queue("q", 16, 3);
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.ExtPush(0x1ABCD).ok());  // masked to 16 bits
  EXPECT_TRUE(queue.ExtPush(2).ok());
  EXPECT_TRUE(queue.ExtPush(3).ok());
  EXPECT_TRUE(queue.full());
  EXPECT_EQ(queue.ExtPush(4).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(*queue.ExtPop(), 0xABCDu);
  EXPECT_EQ(*queue.ExtPop(), 2u);
  EXPECT_EQ(*queue.ExtPop(), 3u);
  EXPECT_EQ(queue.ExtPop().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TieQueueTest, HostAndExtensionShareTheFifo) {
  TieQueue queue("q", 32, 8);
  ASSERT_TRUE(queue.HostPush(11).ok());
  ASSERT_TRUE(queue.HostPush(22).ok());
  EXPECT_EQ(*queue.ExtPop(), 11u);
  ASSERT_TRUE(queue.ExtPush(33).ok());
  EXPECT_EQ(*queue.HostPop(), 22u);
  EXPECT_EQ(*queue.HostPop(), 33u);
  queue.Clear();
  EXPECT_TRUE(queue.empty());
}

// --- TieLookup in isolation ---

TEST(TieLookupTest, HandlerLifecycle) {
  TieLookup lookup("dict", 12);
  EXPECT_FALSE(lookup.has_handler());
  EXPECT_EQ(lookup.Request(1).status().code(),
            StatusCode::kFailedPrecondition);
  lookup.SetHandler([](uint64_t key) -> Result<uint64_t> {
    if (key > 100) return Status::NotFound("no such code");
    return key * 10;
  });
  EXPECT_TRUE(lookup.has_handler());
  EXPECT_EQ(*lookup.Request(7), 70u);
  EXPECT_EQ(lookup.Request(200).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(lookup.latency_cycles(), 12u);
}

// --- A demo extension wiring both into operations ---

class DictDecodeExtension : public TieExtension {
 public:
  static constexpr uint16_t kDecodeOne = 0x190;

  DictDecodeExtension() : TieExtension("dict_decode") {
    input_ = AddQueue("codes_in", 32, 8);
    output_ = AddQueue("values_out", 32, 8);
    dictionary_ = AddLookup("dictionary", /*latency_cycles=*/6);

    // Pops one code, resolves it externally, pushes the decoded value.
    // Sets AR a5 = 1 on success, 0 when the input queue is empty.
    DefineOp(kDecodeOne, "decode_one", [this](sim::ExtContext& ctx) {
      auto code = input_->ExtPop();
      if (!code.ok()) {
        ctx.set_reg(Reg::a5, 0);
        return Status::Ok();
      }
      DBA_ASSIGN_OR_RETURN(uint64_t value, dictionary_->Request(*code));
      ctx.AddCycles(dictionary_->latency_cycles());
      DBA_RETURN_IF_ERROR(output_->ExtPush(value));
      ctx.set_reg(Reg::a5, 1);
      return Status::Ok();
    });
  }

  TieQueue* input_;
  TieQueue* output_;
  TieLookup* dictionary_;
};

class TieInterfaceTest : public ::testing::Test {
 protected:
  TieInterfaceTest() : cpu_(MakeConfig()) {
    EXPECT_TRUE(ext_.Attach(&cpu_).ok());
  }
  static sim::CoreConfig MakeConfig() {
    sim::CoreConfig config;
    config.instruction_bus_bits = 64;
    return config;
  }

  DictDecodeExtension ext_;
  sim::Cpu cpu_;
  isa::Program program_;
};

TEST_F(TieInterfaceTest, DecodePipelineEndToEnd) {
  // External device: dictionary decode = code * 3 + 1.
  ext_.dictionary_->SetHandler(
      [](uint64_t key) -> Result<uint64_t> { return key * 3 + 1; });
  for (uint32_t code : {5u, 10u, 15u}) {
    ASSERT_TRUE(ext_.input_->HostPush(code).ok());
  }

  Assembler masm;
  for (int i = 0; i < 4; ++i) masm.Tie(DictDecodeExtension::kDecodeOne);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  program_ = *std::move(program);
  ASSERT_TRUE(cpu_.LoadProgram(program_).ok());
  auto stats = cpu_.Run();
  ASSERT_TRUE(stats.ok()) << stats.status();

  // Fourth decode found the queue empty.
  EXPECT_EQ(cpu_.reg(Reg::a5), 0u);
  EXPECT_EQ(*ext_.output_->HostPop(), 16u);
  EXPECT_EQ(*ext_.output_->HostPop(), 31u);
  EXPECT_EQ(*ext_.output_->HostPop(), 46u);
  EXPECT_TRUE(ext_.output_->empty());
  // Three lookups at 6 cycles each show up in the cycle count:
  // 4 ops + halt = 5 issue cycles + 18 lookup cycles.
  EXPECT_EQ(stats->cycles, 5u + 18u);
  EXPECT_EQ(stats->ext_extra_cycles, 18u);
}

TEST_F(TieInterfaceTest, LookupErrorPropagatesToRun) {
  ext_.dictionary_->SetHandler([](uint64_t) -> Result<uint64_t> {
    return Status::NotFound("corrupt dictionary");
  });
  ASSERT_TRUE(ext_.input_->HostPush(1).ok());
  Assembler masm;
  masm.Tie(DictDecodeExtension::kDecodeOne);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  program_ = *std::move(program);
  ASSERT_TRUE(cpu_.LoadProgram(program_).ok());
  EXPECT_EQ(cpu_.Run().status().code(), StatusCode::kNotFound);
}

TEST_F(TieInterfaceTest, ResetStateClearsQueues) {
  ASSERT_TRUE(ext_.input_->HostPush(9).ok());
  ext_.ResetState();
  EXPECT_TRUE(ext_.input_->empty());
}

TEST_F(TieInterfaceTest, Introspection) {
  EXPECT_EQ(ext_.FindQueue("codes_in"), ext_.input_);
  EXPECT_EQ(ext_.FindQueue("nope"), nullptr);
  EXPECT_EQ(ext_.FindLookup("dictionary"), ext_.dictionary_);
  EXPECT_EQ(ext_.FindLookup("nope"), nullptr);
}

}  // namespace
}  // namespace dba::tie
