#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "baseline/galloping_baseline.h"
#include "baseline/scalar_baseline.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/workload.h"
#include "obs/metrics/metrics.h"
#include "query/engine.h"
#include "query/partition_index.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/table.h"

namespace dba::query {
namespace {

/// Fixed constants (no calibration run) so every routing decision in
/// this suite is deterministic and computable by hand.
CostModel TestCostModel() {
  CostModel model;
  model.eis_setup_ns = 2000.0;
  model.eis_ns_per_element = 1.0;
  model.gallop_ns_per_probe = 8.0;
  model.simd_ns_per_element = 0.8;
  model.partition_probe_ns = 6.0;
  model.partition_build_ns_per_element = 2.0;
  model.decision_ns = 50.0;
  return model;
}

PlannerOptions TestPlannerOptions() {
  PlannerOptions options;
  options.cost_model = TestCostModel();
  return options;
}

// --- PartitionIndex ---

TEST(PartitionIndexTest, IntersectMatchesScalarAcrossShapes) {
  for (uint32_t indexed : {1u, 255u, 256u, 257u, 5000u, 70000u}) {
    for (double selectivity : {0.0, 0.4, 1.0}) {
      auto pair = GenerateSetPair(std::min(indexed, 300u), indexed,
                                  selectivity, 11 + indexed);
      ASSERT_TRUE(pair.ok());
      const PartitionIndex index = PartitionIndex::Build(pair->b);
      EXPECT_EQ(index.size(), pair->b.size());
      EXPECT_EQ(index.Intersect(pair->a),
                baseline::ScalarIntersect(pair->a, pair->b))
          << "indexed " << indexed << " selectivity " << selectivity;
    }
  }
}

TEST(PartitionIndexTest, ContainsAndEmpty) {
  const PartitionIndex empty = PartitionIndex::Build({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.Contains(0));
  EXPECT_TRUE(empty.Intersect(std::vector<uint32_t>{1, 2}).empty());

  const std::vector<uint32_t> values = {2, 7, 100, 4096, 1u << 30};
  const PartitionIndex index = PartitionIndex::Build(values);
  for (uint32_t v : values) EXPECT_TRUE(index.Contains(v)) << v;
  for (uint32_t v : {0u, 3u, 99u, 101u, 4097u, (1u << 30) + 1}) {
    EXPECT_FALSE(index.Contains(v)) << v;
  }
}

TEST(PartitionIndexTest, DenseDomainGetsMultiPartitionStructure) {
  std::vector<uint32_t> values(10000);
  std::iota(values.begin(), values.end(), 5u);
  const PartitionIndex index = PartitionIndex::Build(values);
  EXPECT_EQ(index.num_partitions(),
            (values.size() + PartitionIndex::kPartitionWidth - 1) /
                PartitionIndex::kPartitionWidth);
  EXPECT_GT(index.directory_size(), 1u);
  std::vector<uint32_t> probes = {0, 5, 17, 9000, 10004, 10005, 20000};
  EXPECT_EQ(index.Intersect(probes),
            baseline::ScalarIntersect(probes, values));
}

// --- PartitionSavingsMeter ---

TEST(SavingsMeterTest, TripsExactlyAtPayback) {
  PartitionSavingsMeter meter;
  // Threshold = 2.0 * 1000; each miss saves 600 -> trips on miss 4.
  EXPECT_FALSE(meter.RecordMiss(600, 1000, 2.0));
  EXPECT_FALSE(meter.RecordMiss(600, 1000, 2.0));
  EXPECT_FALSE(meter.RecordMiss(600, 1000, 2.0));
  EXPECT_TRUE(meter.RecordMiss(600, 1000, 2.0));
  EXPECT_EQ(meter.misses_recorded(), 4u);
  EXPECT_DOUBLE_EQ(meter.missed_savings_ns(), 2400.0);
  meter.ChargeBuild(1000);
  EXPECT_DOUBLE_EQ(meter.missed_savings_ns(), 1400.0);
  // Non-positive savings are ignored entirely.
  EXPECT_FALSE(meter.RecordMiss(0, 1000, 2.0));
  EXPECT_FALSE(meter.RecordMiss(-5, 1000, 2.0));
  EXPECT_EQ(meter.misses_recorded(), 4u);
}

// --- Planner decisions ---

TEST(PlannerTest, RoutesFollowCostModel) {
  Planner planner(TestPlannerOptions());
  // Heavy skew: galloping's log-depth curve wins.
  EXPECT_EQ(planner.Plan(64, 65536, false).route, Route::kGalloping);
  // With an index available the probe route undercuts everything.
  EXPECT_EQ(planner.Plan(64, 65536, true).route, Route::kPartitionProbe);
  // Balanced sets: SIMD merge beats EIS setup+stream at these constants.
  EXPECT_EQ(planner.Plan(4096, 4096, false).route, Route::kSimdMerge);
  // Make host merging expensive: the EIS datapath wins balanced sets.
  PlannerOptions eis_friendly = TestPlannerOptions();
  eis_friendly.cost_model->simd_ns_per_element = 2.0;
  Planner eis_planner(eis_friendly);
  EXPECT_EQ(eis_planner.Plan(4096, 4096, false).route, Route::kEisMerge);
}

TEST(PlannerTest, ForcedRouteAlwaysWins) {
  for (size_t r = 0; r < kNumRoutes; ++r) {
    PlannerOptions options = TestPlannerOptions();
    options.force_route = static_cast<Route>(r);
    Planner planner(options);
    const PlanDecision decision = planner.Plan(100, 100000, false);
    EXPECT_TRUE(decision.forced);
    EXPECT_EQ(decision.route, static_cast<Route>(r));
  }
}

TEST(PlannerTest, PartitionRouteNeedsAnIndex) {
  PlannerOptions options = TestPlannerOptions();
  Planner planner(options);
  EXPECT_NE(planner.Plan(64, 65536, false).route, Route::kPartitionProbe);
  options.allow_partition_index = false;
  Planner no_partition(options);
  EXPECT_NE(no_partition.Plan(64, 65536, true).route,
            Route::kPartitionProbe);
}

TEST(PlannerTest, RouteNamesRoundTrip) {
  for (size_t r = 0; r < kNumRoutes; ++r) {
    const Route route = static_cast<Route>(r);
    auto parsed = ParseRoute(RouteName(route));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, route);
  }
  EXPECT_FALSE(ParseRoute("warp_drive").ok());
}

TEST(PlannerTest, CalibratedModelIsSane) {
  const CostModel& model = Planner::Calibrated();
  EXPECT_GT(model.eis_ns_per_element, 0.0);
  EXPECT_GT(model.simd_ns_per_element, 0.0);
  EXPECT_GT(model.gallop_ns_per_probe, 0.0);
  EXPECT_GT(model.partition_probe_ns, 0.0);
  EXPECT_GT(model.partition_build_ns_per_element, 0.0);
  // The same process-wide model every time.
  EXPECT_EQ(&Planner::Calibrated(), &model);
}

// --- Route equivalence: every route, byte-identical to scalar ---

TEST(RouteEquivalenceTest, AllRoutesMatchScalarAcrossGrid) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  for (uint32_t small : {16u, 500u}) {
    for (uint32_t skew : {1u, 16u, 256u}) {
      for (double selectivity : {0.0, 0.5, 1.0}) {
        auto pair = GenerateSetPair(small, small * skew, selectivity,
                                    1000 + small + skew);
        ASSERT_TRUE(pair.ok());
        const std::vector<uint32_t> expected =
            baseline::ScalarIntersect(pair->a, pair->b);
        for (size_t r = 0; r < kNumRoutes; ++r) {
          const Route route = static_cast<Route>(r);
          auto run = RunIntersectRoute(route, pair->a, pair->b,
                                       processor->get());
          ASSERT_TRUE(run.ok()) << RouteName(route);
          EXPECT_EQ(run->result, expected)
              << RouteName(route) << " small=" << small << " skew=" << skew
              << " selectivity=" << selectivity;
        }
      }
    }
  }
}

// --- Engine integration ---

Table MakeOrdersTable(uint32_t rows, uint64_t seed) {
  Random rng(seed);
  Table table("orders");
  std::vector<uint32_t> region(rows);
  std::vector<uint32_t> status(rows);
  std::vector<uint32_t> amount(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    region[i] = static_cast<uint32_t>(rng.Uniform(5));
    status[i] = static_cast<uint32_t>(rng.Uniform(3));
    amount[i] = static_cast<uint32_t>(rng.Uniform(10000));
  }
  EXPECT_TRUE(table.AddColumn("region", std::move(region)).ok());
  EXPECT_TRUE(table.AddColumn("status", std::move(status)).ok());
  EXPECT_TRUE(table.AddColumn("amount", std::move(amount)).ok());
  return table;
}

class PlannerEngineTest : public ::testing::Test {
 protected:
  PlannerEngineTest() : table_(MakeOrdersTable(4000, 77)) {
    auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
    EXPECT_TRUE(processor.ok());
    processor_ = *std::move(processor);
  }

  std::unique_ptr<QueryEngine> MakeEngine() {
    auto engine = std::make_unique<QueryEngine>(&table_, processor_.get());
    EXPECT_TRUE(engine->BuildIndex("region").ok());
    EXPECT_TRUE(engine->BuildIndex("status").ok());
    EXPECT_TRUE(engine->BuildIndex("amount").ok());
    return engine;
  }

  std::vector<PredicatePtr> TestPredicates() {
    std::vector<PredicatePtr> predicates;
    predicates.push_back(And(Equals("region", 1), LessEq("amount", 120)));
    predicates.push_back(And(Equals("region", 2),
                             And(Equals("status", 0),
                                 Between("amount", 1000, 9000))));
    predicates.push_back(Or(And(Equals("region", 0), Equals("status", 1)),
                            Between("amount", 0, 50)));
    predicates.push_back(And(Between("amount", 0, 9999),
                             Not(Equals("status", 2))));
    return predicates;
  }

  Table table_;
  std::unique_ptr<Processor> processor_;
};

TEST_F(PlannerEngineTest, PlannerKeepsSelectResultsIdenticalToAlwaysEis) {
  auto baseline_engine = MakeEngine();
  auto planned_engine = MakeEngine();
  planned_engine->EnableAdaptivePlanner(TestPlannerOptions());
  uint32_t planned_total = 0;
  for (const PredicatePtr& predicate : TestPredicates()) {
    QueryStats baseline_stats;
    QueryStats planned_stats;
    auto expected = baseline_engine->Select(*predicate, &baseline_stats);
    auto actual = planned_engine->Select(*predicate, &planned_stats);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(*actual, *expected) << predicate->ToString();
    planned_total += planned_stats.planned_ops;
    // Every planned op lands in exactly one route bucket.
    uint32_t routed = 0;
    for (uint32_t count : planned_stats.route_counts) routed += count;
    EXPECT_EQ(routed, planned_stats.planned_ops);
  }
  EXPECT_GT(planned_total, 0u);
}

TEST_F(PlannerEngineTest, ForcedRoutesMatchPlannerChoice) {
  auto chosen_engine = MakeEngine();
  chosen_engine->EnableAdaptivePlanner(TestPlannerOptions());
  for (size_t r = 0; r < kNumRoutes; ++r) {
    PlannerOptions options = TestPlannerOptions();
    options.force_route = static_cast<Route>(r);
    auto forced_engine = MakeEngine();
    forced_engine->EnableAdaptivePlanner(options);
    for (const PredicatePtr& predicate : TestPredicates()) {
      QueryStats forced_stats;
      auto expected = chosen_engine->Select(*predicate);
      auto actual = forced_engine->Select(*predicate, &forced_stats);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok());
      EXPECT_EQ(*actual, *expected)
          << RouteName(static_cast<Route>(r)) << " " << predicate->ToString();
      // Forced engines route every planned op to the forced bucket.
      EXPECT_EQ(forced_stats.route_counts[r], forced_stats.planned_ops);
    }
  }
}

TEST_F(PlannerEngineTest, LazyIndexBuildsOnlyAfterPayback) {
  auto engine = MakeEngine();
  PlannerOptions options = TestPlannerOptions();
  options.payback_factor = 2.0;
  engine->EnableAdaptivePlanner(options);

  // region = 1 yields ~800 RIDs (the indexable large operand);
  // amount <= 120 yields a few dozen (the probe side).
  const auto predicate = And(Equals("region", 1), LessEq("amount", 120));
  QueryStats probe_stats;
  auto small = engine->Select(*LessEq("amount", 120), &probe_stats);
  auto large = engine->Select(*Equals("region", 1), &probe_stats);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());

  // Expected miss accounting, by hand from the injected cost model.
  const CostModel model = TestCostModel();
  const double chosen =
      Planner(options).Plan(small->size(), large->size(), false).chosen_ns;
  const double savings = chosen -
                         model.PartitionProbeNs(small->size(), large->size()) -
                         model.decision_ns;
  ASSERT_GT(savings, 0.0);
  const double build_cost = model.PartitionBuildNs(large->size());
  const auto misses_needed = static_cast<uint32_t>(
      std::ceil(options.payback_factor * build_cost / savings));
  ASSERT_GE(misses_needed, 2u) << "test wants a multi-query payback";

  QueryStats stats;
  for (uint32_t i = 0; i + 1 < misses_needed; ++i) {
    ASSERT_TRUE(engine->Select(*predicate, &stats).ok());
    EXPECT_EQ(stats.partition_index_builds, 0u) << "miss " << i;
  }
  EXPECT_EQ(engine->partition_state("region").indexes_built, 0u);

  // The payback miss: the index materializes and serves this very query.
  ASSERT_TRUE(engine->Select(*predicate, &stats).ok());
  EXPECT_EQ(stats.partition_index_builds, 1u);
  const ColumnIndexState state = engine->partition_state("region");
  EXPECT_EQ(state.indexes_built, 1u);
  EXPECT_EQ(state.misses_recorded, misses_needed);
  EXPECT_EQ(state.indexed_entries, large->size());
  EXPECT_GT(stats.route_counts[static_cast<size_t>(Route::kPartitionProbe)],
            0u);

  // Subsequent identical queries reuse the cached index: no more builds.
  QueryStats after;
  ASSERT_TRUE(engine->Select(*predicate, &after).ok());
  EXPECT_EQ(after.partition_index_builds, 0u);
  EXPECT_EQ(after.route_counts[static_cast<size_t>(Route::kPartitionProbe)],
            after.planned_ops);
}

TEST_F(PlannerEngineTest, SameSeedReplayIsDeterministic) {
  auto run_once = [this] {
    auto engine = MakeEngine();
    engine->EnableAdaptivePlanner(TestPlannerOptions());
    QueryStats stats;
    for (const PredicatePtr& predicate : TestPredicates()) {
      auto rids = engine->Select(*predicate, &stats);
      EXPECT_TRUE(rids.ok());
    }
    return stats;
  };
  const QueryStats first = run_once();
  const QueryStats second = run_once();
  EXPECT_EQ(first.plan, second.plan);
  EXPECT_EQ(first.route_counts, second.route_counts);
  EXPECT_EQ(first.planned_ops, second.planned_ops);
  EXPECT_EQ(first.partition_index_builds, second.partition_index_builds);
  EXPECT_EQ(first.accelerator_cycles, second.accelerator_cycles);
  EXPECT_EQ(first.elements_processed, second.elements_processed);
}

TEST_F(PlannerEngineTest, MetricsRouteCountersMatchQueryStats) {
  auto snapshot_routes = [] {
    std::array<uint64_t, kNumRoutes> counts{};
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    for (size_t r = 0; r < kNumRoutes; ++r) {
      const std::string identity = obs::InstrumentIdentity(
          "dba_query_plan_total", "route", RouteName(static_cast<Route>(r)));
      auto it = snapshot.counters.find(identity);
      counts[r] = it == snapshot.counters.end() ? 0 : it->second;
    }
    return counts;
  };

  auto engine = MakeEngine();
  engine->EnableAdaptivePlanner(TestPlannerOptions());
  const auto before = snapshot_routes();
  QueryStats stats;
  for (const PredicatePtr& predicate : TestPredicates()) {
    ASSERT_TRUE(engine->Select(*predicate, &stats).ok());
  }
  const auto after = snapshot_routes();
  for (size_t r = 0; r < kNumRoutes; ++r) {
    EXPECT_EQ(after[r] - before[r], stats.route_counts[r])
        << RouteName(static_cast<Route>(r));
  }
}

TEST_F(PlannerEngineTest, PlannedJoinKeysMatchesSerialUnderHostThreads) {
  // JoinKeys' final intersection routes through the planner; with
  // concurrent host sorts enabled the result, plan, and route counters
  // must stay identical to the serial engine.
  Random rng(123);
  std::vector<uint32_t> keys_a(1500);
  std::vector<uint32_t> keys_b(900);
  std::iota(keys_a.begin(), keys_a.end(), 10u);
  for (size_t i = 0; i < keys_b.size(); ++i) {
    keys_b[i] = static_cast<uint32_t>(10 + 2 * i);
  }
  Table orders("orders_j");
  Table customers("customers_j");
  ASSERT_TRUE(orders.AddColumn("cust_key", std::move(keys_a)).ok());
  ASSERT_TRUE(customers.AddColumn("key", std::move(keys_b)).ok());

  QueryEngine serial(&orders, processor_.get());
  serial.EnableAdaptivePlanner(TestPlannerOptions());
  QueryStats serial_stats;
  auto serial_keys =
      serial.JoinKeys("cust_key", customers, "key", &serial_stats);
  ASSERT_TRUE(serial_keys.ok()) << serial_keys.status();

  auto sibling = Processor::Create(processor_->kind(), processor_->options());
  ASSERT_TRUE(sibling.ok());
  common::ThreadPool pool(2);
  QueryEngine parallel(&orders, processor_.get());
  parallel.EnableAdaptivePlanner(TestPlannerOptions());
  parallel.EnableConcurrentSorts(&pool, sibling->get());
  QueryStats parallel_stats;
  auto parallel_keys =
      parallel.JoinKeys("cust_key", customers, "key", &parallel_stats);
  ASSERT_TRUE(parallel_keys.ok()) << parallel_keys.status();

  EXPECT_EQ(*parallel_keys, *serial_keys);
  EXPECT_EQ(parallel_stats.plan, serial_stats.plan);
  EXPECT_EQ(parallel_stats.route_counts, serial_stats.route_counts);
  EXPECT_EQ(parallel_stats.planned_ops, serial_stats.planned_ops);
}

TEST_F(PlannerEngineTest, DisableRestoresAlwaysEis) {
  auto engine = MakeEngine();
  engine->EnableAdaptivePlanner(TestPlannerOptions());
  EXPECT_TRUE(engine->planner_enabled());
  engine->DisableAdaptivePlanner();
  EXPECT_FALSE(engine->planner_enabled());
  QueryStats stats;
  auto rids = engine->Select(*And(Equals("region", 1), LessEq("amount", 120)),
                             &stats);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(stats.planned_ops, 0u);
  EXPECT_GT(stats.accelerator_cycles, 0u);
}

}  // namespace
}  // namespace dba::query
