// Fault-tolerant board execution: recovery correctness (bit-exact
// results under injected failures), retry/quarantine/degradation
// telemetry, determinism at any host_threads setting, and the
// BoardConfig validation added with the fault framework.

#include <gtest/gtest.h>

#include <vector>

#include "core/workload.h"
#include "system/board.h"

namespace dba::system {
namespace {

std::unique_ptr<Board> MakeBoard(const BoardConfig& config) {
  auto board = Board::Create(config);
  EXPECT_TRUE(board.ok()) << board.status();
  return board.ok() ? *std::move(board) : nullptr;
}

BoardConfig BaseConfig(int cores = 4, int host_threads = 1) {
  BoardConfig config;
  config.num_cores = cores;
  config.host_threads = host_threads;
  return config;
}

/// A fast hang detection budget so tests do not simulate 50k-cycle
/// spins per injected hang.
void UseFastWatchdog(BoardConfig* config) {
  config->fault_plan.hang_watchdog_cycles = 2000;
}

struct SetPair {
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
};

SetPair MakePair(uint32_t n = 20000) {
  auto pair = GenerateSetPair(n, n, 0.5, 42);
  EXPECT_TRUE(pair.ok()) << pair.status();
  return {pair->a, pair->b};
}

void ExpectZeroRecovery(const RecoveryTelemetry& recovery) {
  EXPECT_EQ(recovery.faults_injected, 0u);
  EXPECT_EQ(recovery.failed_attempts, 0u);
  EXPECT_EQ(recovery.retries, 0u);
  EXPECT_EQ(recovery.requeues, 0u);
  EXPECT_EQ(recovery.verification_failures, 0u);
  EXPECT_EQ(recovery.recovery_cycles, 0u);
  EXPECT_TRUE(recovery.quarantined_cores.empty());
  EXPECT_FALSE(recovery.degraded);
}

TEST(BoardFaultTest, FaultFreeRunReportsZeroRecovery) {
  auto board = MakeBoard(BaseConfig());
  ASSERT_NE(board, nullptr);
  const SetPair pair = MakePair();
  auto run = board->RunSetOperation(SetOp::kIntersect, pair.a, pair.b);
  ASSERT_TRUE(run.ok()) << run.status();
  ExpectZeroRecovery(run->recovery);
  EXPECT_EQ(run->recovery.rounds, 1u);
}

TEST(BoardFaultTest, BrokenCoreRecoversBitExactAllOps) {
  const SetPair pair = MakePair();
  auto clean_board = MakeBoard(BaseConfig());
  ASSERT_NE(clean_board, nullptr);

  BoardConfig faulty = BaseConfig();
  faulty.fault_plan.broken_cores = {1};
  // Quarantine exactly after the four failures the four operations
  // below produce: the set ops all see the part fail, the sort benches
  // it.
  faulty.recovery.quarantine_after = 4;
  UseFastWatchdog(&faulty);
  auto board = MakeBoard(faulty);
  ASSERT_NE(board, nullptr);

  for (const SetOp op :
       {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference}) {
    auto clean = clean_board->RunSetOperation(op, pair.a, pair.b);
    ASSERT_TRUE(clean.ok()) << clean.status();
    auto run = board->RunSetOperation(op, pair.a, pair.b);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->result, clean->result);
    EXPECT_GT(run->recovery.failed_attempts, 0u);
    EXPECT_GT(run->recovery.retries, 0u);
    EXPECT_GT(run->recovery.recovery_cycles, 0u);
  }

  const auto values = GenerateSortInput(30000, 7);
  auto clean_sort = clean_board->RunSort(values);
  ASSERT_TRUE(clean_sort.ok()) << clean_sort.status();
  auto faulty_sort = board->RunSort(values);
  ASSERT_TRUE(faulty_sort.ok()) << faulty_sort.status();
  EXPECT_EQ(faulty_sort->result, clean_sort->result);

  // The board saw the broken part fail repeatedly: by now it must be
  // quarantined and the board degraded (finishing on 3 of 4 cores).
  EXPECT_EQ(board->quarantined_cores(), std::vector<int>{1});
  EXPECT_TRUE(faulty_sort->recovery.degraded);
}

TEST(BoardFaultTest, QuarantinePersistsAndClearsOnReset) {
  const SetPair pair = MakePair(8000);
  BoardConfig config = BaseConfig();
  config.fault_plan.broken_cores = {2};
  config.recovery.quarantine_after = 2;
  UseFastWatchdog(&config);
  auto board = MakeBoard(config);
  ASSERT_NE(board, nullptr);

  // Two operations, two failures on core 2 -> quarantined.
  for (int i = 0; i < 2; ++i) {
    auto run = board->RunSetOperation(SetOp::kUnion, pair.a, pair.b);
    ASSERT_TRUE(run.ok()) << run.status();
  }
  ASSERT_EQ(board->quarantined_cores(), std::vector<int>{2});

  // A quarantined part gets no further work: the next run is clean
  // (single round, zero failed attempts) but reported as degraded.
  auto degraded = board->RunSetOperation(SetOp::kUnion, pair.a, pair.b);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->recovery.failed_attempts, 0u);
  EXPECT_EQ(degraded->recovery.rounds, 1u);
  EXPECT_GT(degraded->recovery.requeues, 0u);  // spilled off core 2
  EXPECT_TRUE(degraded->recovery.degraded);

  board->ResetQuarantine();
  EXPECT_TRUE(board->quarantined_cores().empty());
}

TEST(BoardFaultTest, DeterministicAtAnyHostThreads) {
  const SetPair pair = MakePair();
  Result<ParallelRun> reference = Status::Internal("unset");
  for (const int host_threads : {1, 2, 8}) {
    BoardConfig config = BaseConfig(8, host_threads);
    config.fault_plan.seed = 99;
    config.fault_plan.hang_rate = 0.1;
    config.fault_plan.input_flip_rate = 0.1;
    config.fault_plan.result_flip_rate = 0.1;
    config.fault_plan.transfer_fail_rate = 0.1;
    config.fault_plan.transfer_timeout_rate = 0.1;
    config.recovery.max_attempts = 8;
    config.recovery.quarantine_after = 4;
    UseFastWatchdog(&config);
    auto board = MakeBoard(config);
    ASSERT_NE(board, nullptr);
    auto run = board->RunSetOperation(SetOp::kIntersect, pair.a, pair.b);
    ASSERT_TRUE(run.ok()) << run.status();
    if (!reference.ok()) {
      reference = std::move(run);
      continue;
    }
    // Identical (seed, plan, config) must reproduce the identical fault
    // schedule, recovered result, cycle accounting, and telemetry --
    // host_threads only changes how fast the host simulates.
    EXPECT_EQ(run->result, reference->result);
    EXPECT_EQ(run->makespan_cycles, reference->makespan_cycles);
    EXPECT_EQ(run->total_core_cycles, reference->total_core_cycles);
    EXPECT_EQ(run->per_core_cycles, reference->per_core_cycles);
    EXPECT_EQ(run->recovery.faults_injected,
              reference->recovery.faults_injected);
    EXPECT_EQ(run->recovery.failed_attempts,
              reference->recovery.failed_attempts);
    EXPECT_EQ(run->recovery.retries, reference->recovery.retries);
    EXPECT_EQ(run->recovery.requeues, reference->recovery.requeues);
    EXPECT_EQ(run->recovery.verification_failures,
              reference->recovery.verification_failures);
    EXPECT_EQ(run->recovery.rounds, reference->recovery.rounds);
    EXPECT_EQ(run->recovery.recovery_cycles,
              reference->recovery.recovery_cycles);
    EXPECT_EQ(run->recovery.quarantined_cores,
              reference->recovery.quarantined_cores);
    EXPECT_EQ(run->recovery.degraded, reference->recovery.degraded);
  }
}

TEST(BoardFaultTest, TransientFaultsRecoverBitExact) {
  const SetPair pair = MakePair();
  auto clean_board = MakeBoard(BaseConfig(8));
  ASSERT_NE(clean_board, nullptr);
  auto clean = clean_board->RunSetOperation(SetOp::kDifference, pair.a,
                                            pair.b);
  ASSERT_TRUE(clean.ok()) << clean.status();

  BoardConfig config = BaseConfig(8);
  config.fault_plan.seed = 5;
  config.fault_plan.input_flip_rate = 0.2;
  config.fault_plan.result_flip_rate = 0.2;
  config.fault_plan.transfer_fail_rate = 0.1;
  config.recovery.max_attempts = 8;
  config.recovery.quarantine_after = 4;
  UseFastWatchdog(&config);
  auto board = MakeBoard(config);
  ASSERT_NE(board, nullptr);
  auto run = board->RunSetOperation(SetOp::kDifference, pair.a, pair.b);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result, clean->result);
  EXPECT_GT(run->recovery.faults_injected, 0u);
}

TEST(BoardFaultTest, AllCoresBrokenFailsWithDeadlineExceeded) {
  // A board where every core loops forever must return the watchdog's
  // DeadlineExceeded -- never hang the host.
  const SetPair pair = MakePair(2000);
  BoardConfig config = BaseConfig(2);
  config.fault_plan.broken_cores = {0, 1};
  UseFastWatchdog(&config);
  auto board = MakeBoard(config);
  ASSERT_NE(board, nullptr);
  auto run = board->RunSetOperation(SetOp::kIntersect, pair.a, pair.b);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(BoardFaultTest, FaultFreePathMatchesFaultAwareBoardWithPlanDisabled) {
  // Zero-cost-when-off: a board whose FaultPlan injects nothing must be
  // bit-identical (results and cycle accounting) to a board that never
  // saw the fault framework's knobs.
  const SetPair pair = MakePair();
  auto plain = MakeBoard(BaseConfig());
  BoardConfig tweaked = BaseConfig();
  tweaked.recovery.max_attempts = 9;
  tweaked.recovery.backoff_base_cycles = 4096;
  auto configured = MakeBoard(tweaked);
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(configured, nullptr);
  auto run_a = plain->RunSetOperation(SetOp::kUnion, pair.a, pair.b);
  auto run_b = configured->RunSetOperation(SetOp::kUnion, pair.a, pair.b);
  ASSERT_TRUE(run_a.ok()) << run_a.status();
  ASSERT_TRUE(run_b.ok()) << run_b.status();
  EXPECT_EQ(run_a->result, run_b->result);
  EXPECT_EQ(run_a->makespan_cycles, run_b->makespan_cycles);
  EXPECT_EQ(run_a->total_core_cycles, run_b->total_core_cycles);
  EXPECT_EQ(run_a->per_core_cycles, run_b->per_core_cycles);
  EXPECT_EQ(run_a->energy_uj, run_b->energy_uj);
}

TEST(BoardConfigValidationTest, RejectsBadConfigs) {
  BoardConfig config = BaseConfig();
  config.num_cores = 0;
  EXPECT_EQ(Board::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = BaseConfig();
  config.host_threads = -1;
  EXPECT_EQ(Board::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = BaseConfig();
  config.noc.link_bytes_per_cycle = 0;
  EXPECT_EQ(Board::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = BaseConfig();
  config.noc.bisection_bytes_per_cycle = -1;
  EXPECT_EQ(Board::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = BaseConfig();
  config.fault_plan.hang_rate = 2.0;
  EXPECT_EQ(Board::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = BaseConfig(4);
  config.fault_plan.broken_cores = {4};  // out of range for 4 cores
  EXPECT_EQ(Board::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = BaseConfig();
  config.recovery.max_attempts = 0;
  EXPECT_EQ(Board::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = BaseConfig();
  config.recovery.quarantine_after = 0;
  EXPECT_EQ(Board::Create(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BoardConfigValidationTest, NocValidateIsDirectlyCallable) {
  NocConfig noc;
  EXPECT_TRUE(noc.Validate().ok());
  noc.link_bytes_per_cycle = -3;
  EXPECT_EQ(noc.Validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dba::system
