// The deterministic fault injector: plan validation, decision purity,
// schedule independence from core/thread placement, and the hang-loop
// program that trips the real Cpu watchdog.

#include <gtest/gtest.h>

#include "core/processor.h"
#include "fault/fault.h"

namespace dba::fault {
namespace {

FaultPlan AllRates(double rate, uint64_t seed = 7) {
  FaultPlan plan;
  plan.seed = seed;
  plan.hang_rate = rate;
  plan.input_flip_rate = rate;
  plan.result_flip_rate = rate;
  plan.transfer_fail_rate = rate;
  plan.transfer_timeout_rate = rate;
  return plan;
}

TEST(FaultPlanTest, DefaultPlanIsDisabledAndValid) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.Validate().ok());
}

TEST(FaultPlanTest, RatesAndBrokenCoresEnable) {
  EXPECT_TRUE(AllRates(0.01).enabled());
  FaultPlan broken;
  broken.broken_cores = {2};
  EXPECT_TRUE(broken.enabled());
}

TEST(FaultPlanTest, ValidateRejectsBadValues) {
  FaultPlan plan = AllRates(0.5);
  plan.hang_rate = 1.5;
  EXPECT_EQ(plan.Validate().code(), StatusCode::kInvalidArgument);
  plan = AllRates(0.5);
  plan.transfer_fail_rate = -0.1;
  EXPECT_EQ(plan.Validate().code(), StatusCode::kInvalidArgument);
  plan = AllRates(0.5);
  plan.broken_cores = {-1};
  EXPECT_EQ(plan.Validate().code(), StatusCode::kInvalidArgument);
  plan = AllRates(0.5);
  plan.hang_watchdog_cycles = 0;
  EXPECT_EQ(plan.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjectorTest, ZeroRatesNeverInject) {
  FaultInjector injector{FaultPlan{}};
  for (uint32_t partition = 0; partition < 64; ++partition) {
    AttemptSite site{.op_ordinal = 3, .partition = partition, .core = 1,
                     .attempt = 0};
    EXPECT_FALSE(injector.Decide(site).any());
  }
}

TEST(FaultInjectorTest, RateOneAlwaysInjects) {
  FaultInjector injector(AllRates(1.0));
  AttemptSite site{.op_ordinal = 0, .partition = 0, .core = 0, .attempt = 0};
  const FaultDecision decision = injector.Decide(site);
  EXPECT_TRUE(decision.hang);
  EXPECT_TRUE(decision.transfer_fail);
  EXPECT_TRUE(decision.flip_input);
  EXPECT_TRUE(decision.flip_result);
}

TEST(FaultInjectorTest, DecisionIsPure) {
  FaultInjector injector(AllRates(0.3));
  AttemptSite site{.op_ordinal = 11, .partition = 5, .core = 2,
                   .attempt = 1};
  const FaultDecision first = injector.Decide(site);
  for (int i = 0; i < 10; ++i) {
    const FaultDecision again = injector.Decide(site);
    EXPECT_EQ(first.hang, again.hang);
    EXPECT_EQ(first.transfer_fail, again.transfer_fail);
    EXPECT_EQ(first.transfer_timeout, again.transfer_timeout);
    EXPECT_EQ(first.flip_input, again.flip_input);
    EXPECT_EQ(first.flip_result, again.flip_result);
    EXPECT_EQ(first.flip_offset, again.flip_offset);
    EXPECT_EQ(first.flip_bit, again.flip_bit);
  }
}

TEST(FaultInjectorTest, TransientScheduleIgnoresCorePlacement) {
  // A requeued attempt must see the same fault decision no matter which
  // core (or host thread) picks it up -- the schedule is attached to
  // the work item (op, partition, attempt), not to the executor.
  FaultInjector injector(AllRates(0.4));
  for (uint64_t op = 0; op < 16; ++op) {
    for (uint32_t partition = 0; partition < 8; ++partition) {
      AttemptSite on_core0{.op_ordinal = op, .partition = partition,
                           .core = 0, .attempt = 1};
      AttemptSite on_core3{.op_ordinal = op, .partition = partition,
                           .core = 3, .attempt = 1};
      const FaultDecision a = injector.Decide(on_core0);
      const FaultDecision b = injector.Decide(on_core3);
      EXPECT_EQ(a.hang, b.hang);
      EXPECT_EQ(a.transfer_fail, b.transfer_fail);
      EXPECT_EQ(a.transfer_timeout, b.transfer_timeout);
      EXPECT_EQ(a.flip_input, b.flip_input);
      EXPECT_EQ(a.flip_result, b.flip_result);
      EXPECT_EQ(a.flip_offset, b.flip_offset);
    }
  }
}

TEST(FaultInjectorTest, SitesDecorrelate) {
  // Different sites draw independently: at rate 0.5 some attempts must
  // hang and some must not (a constant decision would mean the site is
  // not feeding the generator).
  FaultInjector injector(AllRates(0.5));
  int hangs = 0;
  constexpr int kSites = 200;
  for (uint32_t i = 0; i < kSites; ++i) {
    AttemptSite site{.op_ordinal = i, .partition = i % 7, .core = 0,
                     .attempt = 0};
    if (injector.Decide(site).hang) ++hangs;
  }
  EXPECT_GT(hangs, 0);
  EXPECT_LT(hangs, kSites);
}

TEST(FaultInjectorTest, BrokenCoreAlwaysHangs) {
  FaultPlan plan;
  plan.broken_cores = {1};
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.IsBroken(1));
  EXPECT_FALSE(injector.IsBroken(0));
  for (uint32_t attempt = 0; attempt < 4; ++attempt) {
    AttemptSite site{.op_ordinal = 0, .partition = 2, .core = 1,
                     .attempt = attempt};
    EXPECT_TRUE(injector.Decide(site).hang);
  }
  AttemptSite healthy{.op_ordinal = 0, .partition = 2, .core = 0,
                      .attempt = 0};
  EXPECT_FALSE(injector.Decide(healthy).any());
}

TEST(HangLoopTest, TripsTheRealCpuWatchdog) {
  auto program = BuildHangLoopProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  auto processor =
      Processor::Create(ProcessorKind::kDba2LsuEis, ProcessorOptions{});
  ASSERT_TRUE(processor.ok()) << processor.status();
  sim::Cpu& cpu = (*processor)->cpu();
  cpu.ResetArchState();
  ASSERT_TRUE(cpu.LoadProgram(*program).ok());
  auto stats = cpu.Run({.max_cycles = 2000});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(HangLoopTest, ProcessorRunSettingsWatchdogTrips) {
  // The board grants a per-attempt budget through
  // RunSettings::max_cycles; a budget far below the kernel's real cost
  // must surface as DeadlineExceeded, not a hang.
  auto processor =
      Processor::Create(ProcessorKind::kDba2LsuEis, ProcessorOptions{});
  ASSERT_TRUE(processor.ok()) << processor.status();
  std::vector<uint32_t> a(256), b(256);
  for (uint32_t i = 0; i < 256; ++i) {
    a[i] = 2 * i;
    b[i] = 3 * i + 1;
  }
  RunSettings settings;
  settings.max_cycles = 16;
  auto run = (*processor)->RunSetOperation(SetOp::kIntersect, a, b, settings);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
  // With the default budget the same inputs succeed.
  auto retry = (*processor)->RunSetOperation(SetOp::kIntersect, a, b);
  EXPECT_TRUE(retry.ok()) << retry.status();
}

}  // namespace
}  // namespace dba::fault
