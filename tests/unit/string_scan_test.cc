// Tests of the string-scan extension and its kernels: dictionary
// equality and prefix (LIKE 'abc%') predicates over fixed-width
// 16-byte string columns.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/random.h"
#include "dbkern/string_kernels.h"
#include "isa/assembler.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/string_extension.h"

namespace dba {
namespace {

using isa::Reg;
using tie::StringExtension;

constexpr uint64_t kColumnBase = 0x1000;
constexpr uint64_t kPatternBase = 0x80000;
constexpr uint64_t kMaskBase = 0x80010;
constexpr uint64_t kResultBase = 0x90000;

/// Pads a string to a 16-byte row (zero-filled).
std::array<uint8_t, 16> Row(const std::string& text) {
  std::array<uint8_t, 16> row{};
  std::memcpy(row.data(), text.data(), std::min<size_t>(16, text.size()));
  return row;
}

std::vector<uint32_t> AsWords(const std::vector<std::array<uint8_t, 16>>& rows) {
  std::vector<uint32_t> words(rows.size() * 4);
  std::memcpy(words.data(), rows.data(), rows.size() * 16);
  return words;
}

class StringScanTest : public ::testing::Test {
 protected:
  StringScanTest()
      : memory_(*mem::Memory::Create({.name = "m",
                                      .base = kColumnBase,
                                      .size = 1 << 20,
                                      .access_latency = 1})),
        cpu_(MakeConfig()) {
    EXPECT_TRUE(cpu_.AttachMemory(&memory_).ok());
    EXPECT_TRUE(ext_.Attach(&cpu_).ok());
  }

  static sim::CoreConfig MakeConfig() {
    sim::CoreConfig config;
    config.num_lsus = 2;
    config.data_bus_bits = 128;
    config.instruction_bus_bits = 64;
    return config;
  }

  /// Scans `rows` for `pattern` with `prefix_len` significant bytes
  /// (0 = full 16-byte equality). Returns (matching rids, cycles).
  Result<std::pair<std::vector<uint32_t>, uint64_t>> RunScan(
      const std::vector<std::array<uint8_t, 16>>& rows,
      const std::string& pattern, size_t significant_bytes,
      bool use_extension) {
    DBA_RETURN_IF_ERROR(memory_.WriteBlock(kColumnBase, AsWords(rows)));
    std::array<uint8_t, 16> pattern_row = Row(pattern);
    std::array<uint8_t, 16> mask_row{};
    for (size_t i = 0; i < significant_bytes && i < 16; ++i) {
      mask_row[i] = 0xFF;
    }
    DBA_RETURN_IF_ERROR(
        memory_.WriteBlock(kPatternBase, AsWords({pattern_row})));
    DBA_RETURN_IF_ERROR(memory_.WriteBlock(kMaskBase, AsWords({mask_row})));

    DBA_ASSIGN_OR_RETURN(isa::Program program,
                         dbkern::BuildStringScanKernel(use_extension));
    program_ = std::move(program);
    cpu_.ResetArchState();
    ext_.ResetState();
    cpu_.set_reg(Reg::a0, kColumnBase);
    cpu_.set_reg(Reg::a1, kPatternBase);
    cpu_.set_reg(Reg::a2, static_cast<uint32_t>(rows.size()));
    cpu_.set_reg(Reg::a3, kMaskBase);
    cpu_.set_reg(Reg::a4, kResultBase);
    DBA_RETURN_IF_ERROR(cpu_.LoadProgram(program_));
    DBA_ASSIGN_OR_RETURN(sim::ExecStats stats, cpu_.Run());
    const uint32_t count = cpu_.reg(Reg::a5);
    DBA_ASSIGN_OR_RETURN(std::vector<uint32_t> rids,
                         memory_.ReadBlock(kResultBase, count));
    return std::make_pair(std::move(rids), stats.cycles);
  }

  mem::Memory memory_;
  sim::Cpu cpu_;
  StringExtension ext_;
  isa::Program program_;
};

TEST_F(StringScanTest, EqualityPredicateBothPaths) {
  const std::vector<std::array<uint8_t, 16>> rows = {
      Row("OPEN"), Row("CLOSED"), Row("OPEN"), Row("PENDING"),
      Row("OPEN"), Row("OPENX")};
  for (bool use_extension : {true, false}) {
    auto run = RunScan(rows, "OPEN", 16, use_extension);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->first, (std::vector<uint32_t>{0, 2, 4}))
        << "ext=" << use_extension;
  }
}

TEST_F(StringScanTest, PrefixPredicateLike) {
  // status LIKE 'OPEN%': mask covers the first four bytes only.
  const std::vector<std::array<uint8_t, 16>> rows = {
      Row("OPEN"), Row("OPENX"), Row("OPEN-2024"), Row("CLOSED"),
      Row("OP")};
  for (bool use_extension : {true, false}) {
    auto run = RunScan(rows, "OPEN", 4, use_extension);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->first, (std::vector<uint32_t>{0, 1, 2}))
        << "ext=" << use_extension;
  }
}

TEST_F(StringScanTest, AllWildcardsMatchesEverything) {
  const std::vector<std::array<uint8_t, 16>> rows = {Row("A"), Row("B"),
                                                     Row("C")};
  auto run = RunScan(rows, "ZZZ", 0, true);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->first, (std::vector<uint32_t>{0, 1, 2}));
}

TEST_F(StringScanTest, EmptyColumn) {
  for (bool use_extension : {true, false}) {
    auto run = RunScan({}, "X", 16, use_extension);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->first.empty());
  }
}

TEST_F(StringScanTest, RandomizedAgainstOracle) {
  Random rng(7);
  const char alphabet[] = "ABC";
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::array<uint8_t, 16>> rows;
    const auto n = rng.Uniform(120);
    for (uint64_t i = 0; i < n; ++i) {
      std::string text;
      const auto len = rng.Uniform(6);
      for (uint64_t c = 0; c < len; ++c) {
        text += alphabet[rng.Uniform(3)];
      }
      rows.push_back(Row(text));
    }
    std::string pattern;
    const auto plen = 1 + rng.Uniform(3);
    for (uint64_t c = 0; c < plen; ++c) pattern += alphabet[rng.Uniform(3)];
    const size_t significant = pattern.size();

    auto hw = RunScan(rows, pattern, significant, true);
    auto sw = RunScan(rows, pattern, significant, false);
    ASSERT_TRUE(hw.ok());
    ASSERT_TRUE(sw.ok());
    EXPECT_EQ(hw->first, sw->first) << "trial " << trial;

    // Host oracle.
    std::array<uint8_t, 16> pattern_row = Row(pattern);
    std::array<uint8_t, 16> mask_row{};
    for (size_t i = 0; i < significant; ++i) mask_row[i] = 0xFF;
    std::vector<uint32_t> expected;
    for (uint32_t rid = 0; rid < rows.size(); ++rid) {
      if (StringExtension::Matches(rows[rid].data(), pattern_row.data(),
                                   mask_row.data())) {
        expected.push_back(rid);
      }
    }
    ASSERT_EQ(hw->first, expected) << "trial " << trial;
  }
}

TEST_F(StringScanTest, MergedInstructionIsFaster) {
  std::vector<std::array<uint8_t, 16>> rows(500, Row("NOPE"));
  rows[123] = Row("YES");
  auto hw = RunScan(rows, "YES", 16, true);
  auto sw = RunScan(rows, "YES", 16, false);
  ASSERT_TRUE(hw.ok());
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(hw->first, sw->first);
  EXPECT_LT(hw->second * 2, sw->second);
}

TEST_F(StringScanTest, ScanBeforeInitFails) {
  isa::Assembler masm;
  masm.Tie(StringExtension::kScan, 6);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  program_ = *std::move(program);
  ASSERT_TRUE(cpu_.LoadProgram(program_).ok());
  cpu_.ResetArchState();
  ext_.ResetState();
  EXPECT_EQ(cpu_.Run().status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dba
