// Core-module tests: Processor construction, options, capacities, the
// merge kernel, and metric plumbing.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/processor.h"
#include "core/workload.h"
#include "prefetch/streaming.h"

namespace dba {
namespace {

TEST(ProcessorTest, CreateValidatesOptions) {
  ProcessorOptions bad;
  bad.unroll = 0;
  EXPECT_FALSE(Processor::Create(ProcessorKind::kDba2LsuEis, bad).ok());
  bad.unroll = 999;
  EXPECT_FALSE(Processor::Create(ProcessorKind::kDba2LsuEis, bad).ok());
}

TEST(ProcessorTest, KindProperties) {
  auto mini = Processor::Create(ProcessorKind::k108Mini);
  auto eis = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(mini.ok());
  ASSERT_TRUE(eis.ok());
  EXPECT_FALSE((*mini)->has_eis());
  EXPECT_TRUE((*eis)->has_eis());
  EXPECT_EQ((*mini)->kind(), ProcessorKind::k108Mini);
  EXPECT_NE((*mini)->eis(), (*eis)->eis());
  EXPECT_EQ((*mini)->eis(), nullptr);
  EXPECT_NEAR((*eis)->frequency_hz(), 410e6, 1e6);
}

TEST(ProcessorTest, TechNodeChangesMetricsNotResults) {
  ProcessorOptions at28;
  at28.tech = hwmodel::TechNode::k28nmGfSlp;
  auto node65 = Processor::Create(ProcessorKind::kDba2LsuEis);
  auto node28 = Processor::Create(ProcessorKind::kDba2LsuEis, at28);
  ASSERT_TRUE(node65.ok());
  ASSERT_TRUE(node28.ok());
  auto pair = GenerateSetPair(1000, 1000, 0.5, 4);
  ASSERT_TRUE(pair.ok());
  auto run65 =
      (*node65)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  auto run28 =
      (*node28)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run65.ok());
  ASSERT_TRUE(run28.ok());
  EXPECT_EQ(run65->result, run28->result);
  EXPECT_EQ(run65->metrics.cycles, run28->metrics.cycles);
  // 500 MHz vs 410 MHz and 47 mW vs 135 mW.
  EXPECT_GT(run28->metrics.throughput_meps,
            run65->metrics.throughput_meps * 1.15);
  EXPECT_LT(run28->metrics.energy_nj_per_element,
            run65->metrics.energy_nj_per_element * 0.5);
}

TEST(ProcessorTest, CapacityQueries) {
  auto two_lsu = Processor::Create(ProcessorKind::kDba2LsuEis);
  auto one_lsu = Processor::Create(ProcessorKind::kDba1LsuEis);
  auto mini = Processor::Create(ProcessorKind::k108Mini);
  ASSERT_TRUE(two_lsu.ok());
  ASSERT_TRUE(one_lsu.ok());
  ASSERT_TRUE(mini.ok());
  // 2-LSU: per-bank capacity independent of the other set.
  EXPECT_EQ((*two_lsu)->max_set_elements(0),
            (*two_lsu)->max_set_elements(5000));
  EXPECT_NEAR((*two_lsu)->max_set_elements(0), 8192, 16);
  // 1-LSU: shared bank, so the other set's size matters.
  EXPECT_LT((*one_lsu)->max_set_elements(8000),
            (*one_lsu)->max_set_elements(1000));
  // Paper workloads fit.
  EXPECT_GE((*one_lsu)->max_set_elements(5000), 5000u);
  EXPECT_GE((*two_lsu)->max_sort_elements(), 6500u);
  // 108Mini streams from system memory: far larger.
  EXPECT_GT((*mini)->max_set_elements(0), 1000000u);
}

TEST(ProcessorTest, ProgramAccessors) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  auto eis_program = (*processor)->setop_program(SetOp::kIntersect, false);
  auto scalar_program =
      (*processor)->setop_program(SetOp::kIntersect, true);
  ASSERT_TRUE(eis_program.ok());
  ASSERT_TRUE(scalar_program.ok());
  EXPECT_NE(*eis_program, *scalar_program);
  // Cached: same pointer on re-request.
  EXPECT_EQ(*eis_program,
            *(*processor)->setop_program(SetOp::kIntersect, false));
  EXPECT_TRUE((*processor)->sort_program(true).ok());
  EXPECT_TRUE((*processor)->sort_program(false).ok());
}

class MergeTest : public ::testing::TestWithParam<ProcessorKind> {};

TEST_P(MergeTest, MatchesStdMerge) {
  auto processor = Processor::Create(GetParam());
  ASSERT_TRUE(processor.ok());
  Random rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    auto make_run = [&rng](size_t max_len) {
      std::vector<uint32_t> values(rng.Uniform(max_len));
      for (auto& v : values) v = static_cast<uint32_t>(rng.Uniform(5000));
      std::sort(values.begin(), values.end());
      return values;
    };
    const auto a = make_run(2000);
    const auto b = make_run(2000);
    auto run = (*processor)->RunMerge(a, b);
    ASSERT_TRUE(run.ok()) << run.status();
    std::vector<uint32_t> expected(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
    ASSERT_EQ(run->result, expected) << "trial " << trial;
  }
}

TEST_P(MergeTest, DuplicateHeavyInputs) {
  auto processor = Processor::Create(GetParam());
  ASSERT_TRUE(processor.ok());
  const std::vector<uint32_t> a(300, 7);
  std::vector<uint32_t> b(200, 7);
  b.insert(b.end(), 100, 9u);
  auto run = (*processor)->RunMerge(a, b);
  ASSERT_TRUE(run.ok()) << run.status();
  std::vector<uint32_t> expected(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  EXPECT_EQ(run->result, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, MergeTest,
    ::testing::Values(ProcessorKind::k108Mini, ProcessorKind::kDba1Lsu,
                      ProcessorKind::kDba1LsuEis, ProcessorKind::kDba2LsuEis),
    [](const ::testing::TestParamInfo<ProcessorKind>& param_info) {
      return std::string(hwmodel::ConfigKindName(param_info.param));
    });

TEST(MergeValidationTest, RejectsUnsortedInputs) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  auto run = (*processor)->RunMerge({{3u, 1u}}, {{1u, 2u}});
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  // Duplicates within an input are fine for merge.
  EXPECT_TRUE((*processor)->RunMerge({{1u, 1u, 2u}}, {{2u}}).ok());
}

TEST(MergeStreamingTest, LargeMergeViaPrefetcher) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  Random rng(17);
  std::vector<uint32_t> a(40000);
  std::vector<uint32_t> b(25000);
  for (auto& v : a) v = rng.Next32() % 1000000;
  for (auto& v : b) v = rng.Next32() % 1000000;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  prefetch::StreamingSetOperation streaming(processor->get(),
                                            prefetch::DmaConfig{});
  auto run = streaming.Run(SetOp::kMerge, a, b);
  ASSERT_TRUE(run.ok()) << run.status();
  std::vector<uint32_t> expected(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  EXPECT_EQ(run->result, expected);
  EXPECT_GT(run->chunks, 1u);
}

TEST(ProcessorTest, AlternatingKernelsInvalidateSuperblockCache) {
  // One processor, one Cpu: each kernel switch reloads a different
  // program, which must rebuild the superblock plan and re-evaluate the
  // loop-accelerator match (a stale tie-loop verdict from the previous
  // kernel would batch-execute the wrong loop body).
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  auto pair = GenerateSetPair(600, 600, 0.5, 11);
  ASSERT_TRUE(pair.ok());
  std::vector<uint32_t> expected_intersect;
  std::set_intersection(pair->a.begin(), pair->a.end(), pair->b.begin(),
                        pair->b.end(),
                        std::back_inserter(expected_intersect));
  std::vector<uint32_t> expected_union;
  std::set_union(pair->a.begin(), pair->a.end(), pair->b.begin(),
                 pair->b.end(), std::back_inserter(expected_union));

  RunSettings eis;
  RunSettings scalar;
  scalar.force_scalar = true;
  for (int round = 0; round < 2; ++round) {
    auto isect =
        (*processor)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b, eis);
    ASSERT_TRUE(isect.ok());
    EXPECT_EQ(isect->result, expected_intersect);
    auto uni =
        (*processor)->RunSetOperation(SetOp::kUnion, pair->a, pair->b, eis);
    ASSERT_TRUE(uni.ok());
    EXPECT_EQ(uni->result, expected_union);
    // The scalar kernel of the same op is a different program again.
    auto isect_scalar = (*processor)->RunSetOperation(SetOp::kIntersect,
                                                      pair->a, pair->b, scalar);
    ASSERT_TRUE(isect_scalar.ok());
    EXPECT_EQ(isect_scalar->result, expected_intersect);
    const auto sort_input = GenerateSortInput(500, 11);
    auto sorted = (*processor)->RunSort(sort_input, eis);
    ASSERT_TRUE(sorted.ok());
    std::vector<uint32_t> expected_sorted = sort_input;
    std::sort(expected_sorted.begin(), expected_sorted.end());
    EXPECT_EQ(sorted->sorted, expected_sorted);
  }
}

TEST(MetricsTest, ThroughputDefinitionsMatchSection52) {
  // T_set = (l_a + l_b) / t and T_sort = n / t.
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  auto pair = GenerateSetPair(2000, 1000, 0.5, 6);
  ASSERT_TRUE(pair.ok());
  auto run =
      (*processor)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  const double expected_tput =
      3000.0 / run->metrics.seconds / 1e6;
  EXPECT_NEAR(run->metrics.throughput_meps, expected_tput, 1e-6);
  const double expected_energy =
      (*processor)->synthesis().power_mw / run->metrics.throughput_meps;
  EXPECT_NEAR(run->metrics.energy_nj_per_element, expected_energy, 1e-9);
}

}  // namespace
}  // namespace dba
