#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "mem/memory.h"
#include "sim/cpu.h"

namespace dba::sim {
namespace {

using isa::Assembler;
using isa::Label;
using isa::Reg;

constexpr uint64_t kMemBase = 0x1000;

struct Harness {
  explicit Harness(CoreConfig config = {}, uint32_t mem_latency = 1)
      : memory(*mem::Memory::Create({.name = "m",
                                     .base = kMemBase,
                                     .size = 4096,
                                     .access_latency = mem_latency})),
        cpu(std::move(config)) {
    EXPECT_TRUE(cpu.AttachMemory(&memory).ok());
  }

  Result<ExecStats> Run(Assembler& masm, const RunOptions& options = {}) {
    auto program = masm.Finish();
    if (!program.ok()) return program.status();
    program_storage = *std::move(program);
    DBA_RETURN_IF_ERROR(cpu.LoadProgram(program_storage));
    return cpu.Run(options);
  }

  mem::Memory memory;
  Cpu cpu;
  isa::Program program_storage;
};

TEST(CpuTest, AluSemantics) {
  Harness h;
  Assembler masm;
  masm.Movi(Reg::a1, 100);
  masm.Movi(Reg::a2, -7);
  masm.Add(Reg::a3, Reg::a1, Reg::a2);    // 93
  masm.Sub(Reg::a4, Reg::a1, Reg::a2);    // 107
  masm.And(Reg::a5, Reg::a1, Reg::a2);    // 100 & 0xFFFFFFF9
  masm.Or(Reg::a6, Reg::a1, Reg::a2);
  masm.Xor(Reg::a7, Reg::a1, Reg::a2);
  masm.Mul(Reg::a8, Reg::a1, Reg::a1);    // 10000
  masm.Min(Reg::a9, Reg::a1, Reg::a2);    // unsigned: 100
  masm.Max(Reg::a10, Reg::a1, Reg::a2);   // unsigned: 0xFFFFFFF9
  masm.Slt(Reg::a11, Reg::a2, Reg::a1);   // signed: -7 < 100 -> 1
  masm.Sltu(Reg::a12, Reg::a2, Reg::a1);  // unsigned: big < 100 -> 0
  masm.Halt();
  ASSERT_TRUE(h.Run(masm).ok());
  EXPECT_EQ(h.cpu.reg(Reg::a3), 93u);
  EXPECT_EQ(h.cpu.reg(Reg::a4), 107u);
  EXPECT_EQ(h.cpu.reg(Reg::a5), 100u & 0xFFFFFFF9u);
  EXPECT_EQ(h.cpu.reg(Reg::a6), 100u | 0xFFFFFFF9u);
  EXPECT_EQ(h.cpu.reg(Reg::a7), 100u ^ 0xFFFFFFF9u);
  EXPECT_EQ(h.cpu.reg(Reg::a8), 10000u);
  EXPECT_EQ(h.cpu.reg(Reg::a9), 100u);
  EXPECT_EQ(h.cpu.reg(Reg::a10), 0xFFFFFFF9u);
  EXPECT_EQ(h.cpu.reg(Reg::a11), 1u);
  EXPECT_EQ(h.cpu.reg(Reg::a12), 0u);
}

TEST(CpuTest, ShiftSemantics) {
  Harness h;
  Assembler masm;
  masm.Movi(Reg::a1, -16);  // 0xFFFFFFF0
  masm.Movi(Reg::a2, 2);
  masm.Sll(Reg::a3, Reg::a1, Reg::a2);   // 0xFFFFFFC0
  masm.Srl(Reg::a4, Reg::a1, Reg::a2);   // 0x3FFFFFFC
  masm.Sra(Reg::a5, Reg::a1, Reg::a2);   // 0xFFFFFFFC
  masm.Slli(Reg::a6, Reg::a1, 4);
  masm.Srli(Reg::a7, Reg::a1, 28);
  masm.Srai(Reg::a8, Reg::a1, 31);
  masm.Halt();
  ASSERT_TRUE(h.Run(masm).ok());
  EXPECT_EQ(h.cpu.reg(Reg::a3), 0xFFFFFFC0u);
  EXPECT_EQ(h.cpu.reg(Reg::a4), 0x3FFFFFFCu);
  EXPECT_EQ(h.cpu.reg(Reg::a5), 0xFFFFFFFCu);
  EXPECT_EQ(h.cpu.reg(Reg::a6), 0xFFFFFF00u);
  EXPECT_EQ(h.cpu.reg(Reg::a7), 0xFu);
  EXPECT_EQ(h.cpu.reg(Reg::a8), 0xFFFFFFFFu);
}

TEST(CpuTest, LoadImm32Pseudo) {
  Harness h;
  Assembler masm;
  masm.LoadImm32(Reg::a1, 0xDEADBEEF);
  masm.LoadImm32(Reg::a2, 0x00000800);  // exercises the +0x800 carry
  masm.LoadImm32(Reg::a3, 5);
  masm.LoadImm32(Reg::a4, 0xFFFFF800);
  masm.Halt();
  ASSERT_TRUE(h.Run(masm).ok());
  EXPECT_EQ(h.cpu.reg(Reg::a1), 0xDEADBEEFu);
  EXPECT_EQ(h.cpu.reg(Reg::a2), 0x800u);
  EXPECT_EQ(h.cpu.reg(Reg::a3), 5u);
  EXPECT_EQ(h.cpu.reg(Reg::a4), 0xFFFFF800u);
}

TEST(CpuTest, LoadStore) {
  Harness h;
  Assembler masm;
  masm.LoadImm32(Reg::a1, kMemBase);
  masm.Movi(Reg::a2, 1234);
  masm.Sw(Reg::a2, Reg::a1, 16);
  masm.Lw(Reg::a3, Reg::a1, 16);
  masm.Halt();
  ASSERT_TRUE(h.Run(masm).ok());
  EXPECT_EQ(h.cpu.reg(Reg::a3), 1234u);
  EXPECT_EQ(*h.memory.LoadU32(kMemBase + 16), 1234u);
}

TEST(CpuTest, MemoryLatencyStalls) {
  CoreConfig config;
  Harness slow(config, /*mem_latency=*/4);
  Harness fast(config, /*mem_latency=*/1);
  auto build = [](Assembler& masm) {
    masm.LoadImm32(Reg::a1, kMemBase);
    masm.Lw(Reg::a2, Reg::a1, 0);
    masm.Lw(Reg::a3, Reg::a1, 4);
    masm.Halt();
  };
  Assembler slow_prog;
  Assembler fast_prog;
  build(slow_prog);
  build(fast_prog);
  auto slow_stats = slow.Run(slow_prog);
  auto fast_stats = fast.Run(fast_prog);
  ASSERT_TRUE(slow_stats.ok());
  ASSERT_TRUE(fast_stats.ok());
  EXPECT_EQ(slow_stats->cycles, fast_stats->cycles + 2 * 3);
  EXPECT_EQ(slow_stats->load_stall_cycles, 6u);
  EXPECT_EQ(fast_stats->load_stall_cycles, 0u);
}

TEST(CpuTest, BranchTakenAndNotTaken) {
  Harness h;
  Assembler masm;
  Label skip;
  masm.Movi(Reg::a1, 1);
  masm.Movi(Reg::a2, 2);
  masm.Blt(Reg::a1, Reg::a2, &skip);  // taken
  masm.Movi(Reg::a3, 111);            // skipped
  masm.Bind(&skip);
  masm.Beq(Reg::a1, Reg::a2, &skip);  // not taken
  masm.Movi(Reg::a4, 222);
  masm.Halt();
  auto stats = h.Run(masm);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(h.cpu.reg(Reg::a3), 0u);
  EXPECT_EQ(h.cpu.reg(Reg::a4), 222u);
  EXPECT_EQ(stats->taken_branches, 1u);
}

TEST(CpuTest, BtfnPredictorPenalties) {
  // A backward loop branch is predicted taken: penalty only on exit.
  CoreConfig config;
  config.branch_mispredict_penalty = 5;
  Harness h(config);
  Assembler masm;
  Label loop;
  masm.Movi(Reg::a1, 0);
  masm.Movi(Reg::a2, 10);
  masm.Bind(&loop);
  masm.Addi(Reg::a1, Reg::a1, 1);
  masm.Blt(Reg::a1, Reg::a2, &loop);
  masm.Halt();
  auto stats = h.Run(masm);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->taken_branches, 9u);
  EXPECT_EQ(stats->mispredicted_branches, 1u);  // final not-taken
  EXPECT_EQ(stats->branch_penalty_cycles, 5u);
  // 2 setup + 10 iterations x 2 + penalty.
  EXPECT_EQ(stats->cycles, 2u + 20u + 5u + 1u);
}

TEST(CpuTest, ForwardTakenBranchMispredicts) {
  CoreConfig config;
  config.branch_mispredict_penalty = 3;
  Harness h(config);
  Assembler masm;
  Label fwd;
  masm.Movi(Reg::a1, 1);
  masm.Beq(Reg::a1, Reg::a1, &fwd);  // forward taken: mispredict
  masm.Nop();
  masm.Bind(&fwd);
  masm.Halt();
  auto stats = h.Run(masm);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->mispredicted_branches, 1u);
  EXPECT_EQ(stats->branch_penalty_cycles, 3u);
}

TEST(CpuTest, JumpIsFree) {
  Harness h;
  Assembler masm;
  Label over;
  masm.J(&over);
  masm.Nop();
  masm.Bind(&over);
  masm.Halt();
  auto stats = h.Run(masm);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cycles, 2u);
  EXPECT_EQ(stats->mispredicted_branches, 0u);
}

TEST(CpuTest, WatchdogFires) {
  Harness h;
  Assembler masm;
  Label forever;
  masm.Bind(&forever);
  masm.J(&forever);
  auto stats = h.Run(masm, {.max_cycles = 100});
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CpuTest, FallingOffProgramIsError) {
  Harness h;
  Assembler masm;
  masm.Nop();  // no halt
  auto stats = h.Run(masm);
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
}

TEST(CpuTest, RunWithoutProgramFails) {
  Harness h;
  EXPECT_EQ(h.cpu.Run().status().code(), StatusCode::kFailedPrecondition);
}

TEST(CpuTest, UnmappedAddressFails) {
  Harness h;
  Assembler masm;
  masm.Movi(Reg::a1, 0);
  masm.Lw(Reg::a2, Reg::a1, 0);
  masm.Halt();
  auto stats = h.Run(masm);
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST(CpuTest, ProfileCollectsCounts) {
  Harness h;
  Assembler masm;
  Label loop;
  masm.Movi(Reg::a1, 0);
  masm.Movi(Reg::a2, 5);
  masm.Bind(&loop);
  masm.Addi(Reg::a1, Reg::a1, 1);
  masm.Blt(Reg::a1, Reg::a2, &loop);
  masm.Halt();
  auto stats = h.Run(masm, {.profile = true});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pc_counts[2], 5u);
  EXPECT_EQ(stats->mnemonic_counts.at("addi"), 5u);
  EXPECT_EQ(stats->mnemonic_counts.at("blt"), 5u);
}

TEST(CpuTest, ExtOpRegistrationValidation) {
  Harness h;
  auto ok_fn = [](ExtContext&) { return Status::Ok(); };
  EXPECT_TRUE(h.cpu.RegisterExtOp(0x300, "demo", ok_fn).ok());
  EXPECT_EQ(h.cpu.RegisterExtOp(0x300, "again", ok_fn).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(h.cpu.RegisterExtOp(0, "zero", ok_fn).ok());
  EXPECT_FALSE(h.cpu.RegisterExtOp(0x301, "null", nullptr).ok());
  EXPECT_TRUE(h.cpu.HasExtOp(0x300));
  EXPECT_FALSE(h.cpu.HasExtOp(0x301));
}

TEST(CpuTest, UnregisteredExtOpRejectedAtLoad) {
  Harness h;
  Assembler masm;
  masm.Tie(0x999);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(h.cpu.LoadProgram(*program).code(), StatusCode::kNotFound);
}

TEST(CpuTest, FlixNeedsWideInstructionBus) {
  CoreConfig narrow;
  narrow.instruction_bus_bits = 32;
  Harness h(narrow);
  ASSERT_TRUE(h.cpu
                  .RegisterExtOp(0x300, "demo",
                                 [](ExtContext&) { return Status::Ok(); })
                  .ok());
  Assembler masm;
  masm.Flix({isa::TieSlot{0x300, 0}});
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(h.cpu.LoadProgram(*program).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CpuTest, InstructionMemoryCapacityEnforced) {
  CoreConfig tiny;
  tiny.instruction_memory_bytes = 16;  // four base instructions
  Harness h(tiny);
  Assembler masm;
  for (int i = 0; i < 5; ++i) masm.Nop();
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(h.cpu.LoadProgram(*program).code(),
            StatusCode::kResourceExhausted);
}

TEST(CpuTest, ExtOpPortContentionCharged) {
  // One op issuing two beats on the same LSU costs an extra cycle; on
  // two LSUs the beats run in parallel.
  for (const int lsus : {1, 2}) {
    CoreConfig config;
    config.num_lsus = lsus;
    config.data_bus_bits = 128;
    config.instruction_bus_bits = 64;
    Harness h(config);
    ASSERT_TRUE(h.cpu
                    .RegisterExtOp(0x300, "two_beats",
                                   [](ExtContext& ctx) {
                                     auto beat0 = ctx.LoadBeat(0, kMemBase);
                                     DBA_RETURN_IF_ERROR(beat0.status());
                                     auto beat1 =
                                         ctx.LoadBeat(1, kMemBase + 16);
                                     return beat1.status();
                                   })
                    .ok());
    Assembler masm;
    masm.Tie(0x300);
    masm.Halt();
    auto stats = h.Run(masm);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->cycles, lsus == 1 ? 3u : 2u) << lsus << " LSUs";
    EXPECT_EQ(stats->port_stall_cycles, lsus == 1 ? 1u : 0u);
    EXPECT_EQ(stats->lsu_beats[0] + stats->lsu_beats[1], 2u);
  }
}

TEST(CpuTest, BeatRequiresWideDataBus) {
  CoreConfig narrow;  // 32-bit data bus
  Harness h(narrow);
  ASSERT_TRUE(h.cpu
                  .RegisterExtOp(0x300, "beat",
                                 [](ExtContext& ctx) {
                                   return ctx.LoadBeat(0, kMemBase).status();
                                 })
                  .ok());
  Assembler masm;
  masm.Tie(0x300);
  masm.Halt();
  EXPECT_EQ(h.Run(masm).status().code(), StatusCode::kFailedPrecondition);
}

TEST(CpuTest, ExtOpExtraCyclesCharged) {
  Harness h;
  ASSERT_TRUE(h.cpu
                  .RegisterExtOp(0x300, "slow",
                                 [](ExtContext& ctx) {
                                   ctx.AddCycles(7);
                                   return Status::Ok();
                                 })
                  .ok());
  Assembler masm;
  masm.Tie(0x300);
  masm.Halt();
  auto stats = h.Run(masm);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cycles, 9u);
  EXPECT_EQ(stats->ext_extra_cycles, 7u);
}

TEST(CpuTest, ExtOpReadsOperandAndRegs) {
  Harness h;
  ASSERT_TRUE(h.cpu
                  .RegisterExtOp(0x300, "addi_ext",
                                 [](ExtContext& ctx) {
                                   ctx.set_reg(Reg::a5,
                                               ctx.reg(Reg::a1) + ctx.operand());
                                   return Status::Ok();
                                 })
                  .ok());
  Assembler masm;
  masm.Movi(Reg::a1, 40);
  masm.Tie(0x300, 2);
  masm.Halt();
  ASSERT_TRUE(h.Run(masm).ok());
  EXPECT_EQ(h.cpu.reg(Reg::a5), 42u);
}

TEST(CpuTest, FlixBundleIssuesAllSlotsInOneCycle) {
  CoreConfig config;
  config.instruction_bus_bits = 64;
  Harness h(config);
  int calls = 0;
  ASSERT_TRUE(h.cpu
                  .RegisterExtOp(0x300, "count",
                                 [&calls](ExtContext&) {
                                   ++calls;
                                   return Status::Ok();
                                 })
                  .ok());
  Assembler masm;
  masm.Flix({isa::TieSlot{0x300, 0}, isa::TieSlot{0x300, 1},
             isa::TieSlot{0x300, 2}});
  masm.Halt();
  auto stats = h.Run(masm);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats->cycles, 2u);  // bundle + halt
  EXPECT_EQ(stats->instructions, 4u);
}

TEST(CpuTest, ResetArchState) {
  Harness h;
  h.cpu.set_reg(Reg::a1, 99);
  h.cpu.set_pc(5);
  h.cpu.ResetArchState();
  EXPECT_EQ(h.cpu.reg(Reg::a1), 0u);
  EXPECT_EQ(h.cpu.pc(), 0u);
}

// --- Superblock cache invalidation (the decode-once execution plan) ---

void ExpectSameStats(const ExecStats& a, const ExecStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.bundles, b.bundles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.taken_branches, b.taken_branches);
  EXPECT_EQ(a.mispredicted_branches, b.mispredicted_branches);
  EXPECT_EQ(a.branch_penalty_cycles, b.branch_penalty_cycles);
  EXPECT_EQ(a.load_stall_cycles, b.load_stall_cycles);
  EXPECT_EQ(a.store_stall_cycles, b.store_stall_cycles);
  EXPECT_EQ(a.port_stall_cycles, b.port_stall_cycles);
  EXPECT_EQ(a.ext_extra_cycles, b.ext_extra_cycles);
  EXPECT_EQ(a.lsu_beats[0], b.lsu_beats[0]);
  EXPECT_EQ(a.lsu_beats[1], b.lsu_beats[1]);
  EXPECT_EQ(a.pc_counts, b.pc_counts);
}

TEST(CpuSuperblockTest, ReloadingChangedProgramDropsStaleBlocks) {
  Harness h;
  // Program A: a 10-iteration counting loop.
  Assembler a;
  Label loop_a;
  a.Movi(Reg::a1, 0);
  a.Movi(Reg::a2, 10);
  a.Bind(&loop_a);
  a.Addi(Reg::a1, Reg::a1, 1);
  a.Bltu(Reg::a1, Reg::a2, &loop_a);
  a.Halt();
  ASSERT_TRUE(h.Run(a).ok());
  EXPECT_EQ(h.cpu.reg(Reg::a1), 10u);
  const size_t blocks_a = h.cpu.num_superblocks();
  const uint32_t len_a = h.cpu.superblock_at(0).len;

  // Program B: straight-line with more leading words -- a different
  // block structure. A stale plan would misattribute the loop head.
  Assembler b;
  Label loop_b;
  b.Movi(Reg::a1, 0);
  b.Movi(Reg::a2, 3);
  b.Movi(Reg::a3, 7);
  b.Movi(Reg::a4, 0);
  b.Bind(&loop_b);
  b.Add(Reg::a4, Reg::a4, Reg::a3);
  b.Addi(Reg::a1, Reg::a1, 1);
  b.Bltu(Reg::a1, Reg::a2, &loop_b);
  b.Halt();
  h.cpu.ResetArchState();
  ASSERT_TRUE(h.Run(b).ok());
  EXPECT_EQ(h.cpu.reg(Reg::a4), 21u);
  // The plan reflects program B, not the cached A decomposition.
  EXPECT_TRUE(h.cpu.num_superblocks() != blocks_a ||
              h.cpu.superblock_at(0).len != len_a);
}

TEST(CpuSuperblockTest, ReloadingIdenticalProgramKeepsWorking) {
  Harness h;
  Assembler masm;
  Label loop;
  masm.Movi(Reg::a1, 0);
  masm.Movi(Reg::a2, 5);
  masm.Bind(&loop);
  masm.Addi(Reg::a1, Reg::a1, 1);
  masm.Bltu(Reg::a1, Reg::a2, &loop);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(h.cpu.LoadProgram(*program).ok());
  ASSERT_TRUE(h.cpu.Run().ok());
  const size_t blocks = h.cpu.num_superblocks();
  // Reloading identical content skips the decode but must leave a
  // valid, equivalent plan.
  ASSERT_TRUE(h.cpu.LoadProgram(*program).ok());
  EXPECT_EQ(h.cpu.num_superblocks(), blocks);
  h.cpu.ResetArchState();
  ASSERT_TRUE(h.cpu.Run().ok());
  EXPECT_EQ(h.cpu.reg(Reg::a1), 5u);
}

TEST(CpuSuperblockTest, BranchIntoMiddleOfCachedSuperblock) {
  // The first pass enters the region at its head and caches the block;
  // the backward branch then re-enters it mid-block. Fast-forward must
  // resume at the branch target, not replay from the cached head.
  auto build = [](Assembler& masm) {
    Label mid;
    masm.Movi(Reg::a1, 0);  // incremented only on the head entry
    masm.Movi(Reg::a2, 0);  // incremented every pass
    masm.Movi(Reg::a4, 5);
    masm.Addi(Reg::a1, Reg::a1, 1);  // region head
    masm.Bind(&mid);
    masm.Addi(Reg::a2, Reg::a2, 1);  // mid-block branch target
    masm.Bltu(Reg::a2, Reg::a4, &mid);
    masm.Halt();
  };
  Harness ff;
  Harness ref;
  Assembler masm_ff;
  build(masm_ff);
  Assembler masm_ref;
  build(masm_ref);
  RunOptions profile;
  profile.profile = true;
  profile.mode = ExecMode::kFastForward;
  auto stats_ff = ff.Run(masm_ff, profile);
  profile.mode = ExecMode::kInterpret;
  auto stats_ref = ref.Run(masm_ref, profile);
  ASSERT_TRUE(stats_ff.ok());
  ASSERT_TRUE(stats_ref.ok());
  EXPECT_EQ(ff.cpu.reg(Reg::a1), 1u);
  EXPECT_EQ(ff.cpu.reg(Reg::a2), 5u);
  EXPECT_EQ(ref.cpu.reg(Reg::a1), 1u);
  EXPECT_EQ(ref.cpu.reg(Reg::a2), 5u);
  ExpectSameStats(*stats_ff, *stats_ref);
}

}  // namespace
}  // namespace dba::sim
