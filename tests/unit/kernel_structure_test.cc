// Structural tests of the kernel programs: label layout, instruction
// mix, and the Figure 11/12 loop shapes, via the disassembler. These
// catch unintended codegen changes that correctness tests would miss
// (e.g., a silently widened core loop).

#include <gtest/gtest.h>

#include "dbkern/eis_kernels.h"
#include "dbkern/scalar_kernels.h"
#include "eis/eis_extension.h"
#include "isa/disassembler.h"
#include "isa/encoding.h"

namespace dba::dbkern {
namespace {

std::string EisName(uint16_t ext_id) {
  switch (ext_id) {
    case eis::op::kInit:
      return "init";
    case eis::op::kStoreSop:
      return "store_sop";
    case eis::op::kLdLdpShuffle:
      return "ld_ldp_shuffle";
    case eis::op::kLdMerge:
      return "ld_merge";
    case eis::op::kSortBeat:
      return "sort_beat";
    case eis::op::kFlush:
      return "flush";
    default:
      return {};
  }
}

int CountMnemonic(const isa::Program& program, const std::string& needle) {
  int count = 0;
  for (size_t pc = 0; pc < program.size(); ++pc) {
    auto word = isa::Decode(program.word(pc));
    if (word.ok() && isa::DisassembleWord(*word, EisName) == needle) {
      ++count;
    }
  }
  return count;
}

TEST(KernelStructureTest, EisSetOpLoopIsTwoWordsPerIteration) {
  // Figure 11: the unrolled body is U x (STORE_SOP, LD_LDP_SHUFFLE)
  // plus prologue (movi, init, first load), the back edge, flush, halt.
  for (int unroll : {1, 4, 32}) {
    auto program =
        BuildEisSetOp(eis::SopMode::kIntersect, true, unroll);
    ASSERT_TRUE(program.ok());
    EXPECT_EQ(program->size(),
              static_cast<size_t>(3 + 2 * unroll + 3))
        << "unroll " << unroll;
    EXPECT_EQ(CountMnemonic(*program, "store_sop #6"), unroll);
    EXPECT_EQ(CountMnemonic(*program, "ld_ldp_shuffle"), unroll + 1);
    EXPECT_EQ(CountMnemonic(*program, "flush"), 1);
    EXPECT_EQ(program->LabelAt(3), "core_loop");
  }
}

TEST(KernelStructureTest, EisMergePairIsFigure12Shape) {
  auto program = BuildEisMergePair();
  ASSERT_TRUE(program.ok());
  // movi, init, ld_merge, [store_sop, ld_merge, bne], flush, halt = 8.
  EXPECT_EQ(program->size(), 8u);
  EXPECT_EQ(CountMnemonic(*program, "store_sop #6"), 1);
  EXPECT_EQ(CountMnemonic(*program, "ld_merge #6"), 2);
  EXPECT_EQ(program->LabelAt(3), "core_loop");
}

TEST(KernelStructureTest, EisSortUsesPresortAndMergeLoops) {
  auto program = BuildEisMergeSort();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(CountMnemonic(*program, "sort_beat #6"), 1);
  EXPECT_EQ(CountMnemonic(*program, "init #7"), 2);  // presort + per-pair
  // Named structure present.
  bool has_presort = false;
  bool has_pair_loop = false;
  for (const auto& [name, pc] : program->labels()) {
    has_presort |= name == "presort_loop";
    has_pair_loop |= name == "pair_loop";
  }
  EXPECT_TRUE(has_presort);
  EXPECT_TRUE(has_pair_loop);
}

TEST(KernelStructureTest, ScalarKernelsKeepTheirBranchStructure) {
  auto intersect = BuildScalarSetOp(eis::SopMode::kIntersect);
  ASSERT_TRUE(intersect.ok());
  // Figure 3: the two data-dependent branches are beq + bltu.
  int beq = 0;
  int bltu = 0;
  for (size_t pc = 0; pc < intersect->size(); ++pc) {
    auto word = isa::Decode(intersect->word(pc));
    ASSERT_TRUE(word.ok());
    if (word->base.opcode == isa::Opcode::kBeq) ++beq;
    if (word->base.opcode == isa::Opcode::kBltu) ++bltu;
  }
  EXPECT_EQ(beq, 1);
  EXPECT_EQ(bltu, 1);
  EXPECT_EQ(intersect->LabelAt(7), "core_loop");
}

TEST(KernelStructureTest, AllKernelsFitTheInstructionMemory) {
  // 32 KiB local instruction memory (Section 5.1); base words are 4
  // bytes in this encoding.
  for (auto mode : {eis::SopMode::kIntersect, eis::SopMode::kUnion,
                    eis::SopMode::kDifference}) {
    auto eis_program = BuildEisSetOp(mode, true, 32);
    ASSERT_TRUE(eis_program.ok());
    EXPECT_LT(eis_program->size() * 4, 32u << 10);
    auto scalar_program = BuildScalarSetOp(mode);
    ASSERT_TRUE(scalar_program.ok());
    EXPECT_LT(scalar_program->size() * 4, 32u << 10);
  }
  auto sort_program = BuildEisMergeSort();
  ASSERT_TRUE(sort_program.ok());
  EXPECT_LT(sort_program->size() * 4, 32u << 10);
}

TEST(KernelStructureTest, DisassemblyListingIsStable) {
  // Spot-check the rendered prologue of the EIS intersection kernel.
  auto program = BuildEisSetOp(eis::SopMode::kIntersect, true, 1);
  ASSERT_TRUE(program.ok());
  const std::string listing = isa::DisassembleProgram(*program, EisName);
  EXPECT_NE(listing.find("movi a7, 0"), std::string::npos);
  EXPECT_NE(listing.find("init #4"), std::string::npos);  // intersect+partial
  EXPECT_NE(listing.find("core_loop:"), std::string::npos);
  EXPECT_NE(listing.find("bne a6, a7, -3"), std::string::npos);
}

}  // namespace
}  // namespace dba::dbkern
