#include <gtest/gtest.h>

#include "common/random.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "isa/encoding.h"
#include "isa/opcode.h"

namespace dba::isa {
namespace {

// --- Encoding ---

TEST(EncodingTest, BaseRoundTripAllFormats) {
  Instruction samples[] = {
      {.opcode = Opcode::kNop},
      {.opcode = Opcode::kHalt},
      {.opcode = Opcode::kAdd, .rd = Reg::a3, .rs1 = Reg::a4, .rs2 = Reg::a5},
      {.opcode = Opcode::kAddi, .rd = Reg::a1, .rs1 = Reg::a2, .imm = -7},
      {.opcode = Opcode::kLw, .rd = Reg::a9, .rs1 = Reg::a0, .imm = 2047},
      {.opcode = Opcode::kSw, .rs1 = Reg::a0, .rs2 = Reg::a15, .imm = -2048},
      {.opcode = Opcode::kBlt, .rs1 = Reg::a6, .rs2 = Reg::a7, .imm = -3},
      {.opcode = Opcode::kJ, .imm = -100000},
      {.opcode = Opcode::kLui, .rd = Reg::a8, .imm = 0xFFFFF},
      {.opcode = Opcode::kTie, .ext_id = 0x205, .operand = 0x7F},
  };
  for (const Instruction& instr : samples) {
    auto decoded = Decode(EncodeBase(instr));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->kind, DecodedWord::Kind::kBase);
    EXPECT_EQ(decoded->base, instr) << OpcodeName(instr.opcode);
  }
}

TEST(EncodingTest, RandomizedRoundTrip) {
  // Property sweep: every valid opcode with random field values survives
  // an encode/decode round trip.
  Random rng(2024);
  const Opcode opcodes[] = {
      Opcode::kAdd,  Opcode::kSub,  Opcode::kAnd,  Opcode::kOr,
      Opcode::kXor,  Opcode::kSll,  Opcode::kSrl,  Opcode::kSra,
      Opcode::kSlt,  Opcode::kSltu, Opcode::kMul,  Opcode::kMin,
      Opcode::kMax,  Opcode::kAddi, Opcode::kAndi, Opcode::kOri,
      Opcode::kXori, Opcode::kSlti, Opcode::kSltiu, Opcode::kMovi,
      Opcode::kLw,   Opcode::kSw,   Opcode::kBeq,  Opcode::kBne,
      Opcode::kBlt,  Opcode::kBltu, Opcode::kBge,  Opcode::kBgeu,
  };
  for (int trial = 0; trial < 2000; ++trial) {
    Instruction instr;
    instr.opcode = opcodes[rng.Uniform(std::size(opcodes))];
    const Format format = OpcodeFormat(instr.opcode);
    if (format == Format::kR || format == Format::kI) {
      instr.rd = RegFromIndex(static_cast<int>(rng.Uniform(16)));
    }
    instr.rs1 = RegFromIndex(static_cast<int>(rng.Uniform(16)));
    if (format != Format::kI) {
      instr.rs2 = RegFromIndex(static_cast<int>(rng.Uniform(16)));
    }
    if (format == Format::kI || format == Format::kS || format == Format::kB) {
      instr.imm = static_cast<int32_t>(rng.Uniform(4096)) - 2048;
    }
    // Formats leave unused fields zero, as the decoder reproduces them.
    if (format == Format::kR) instr.imm = 0;
    if (format == Format::kS || format == Format::kB) instr.rd = Reg::a0;
    if (format == Format::kI) instr.rs2 = Reg::a0;
    auto decoded = Decode(EncodeBase(instr));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->base, instr) << OpcodeName(instr.opcode);
  }
}

TEST(EncodingTest, FlixRoundTrip) {
  std::array<TieSlot, kMaxFlixSlots> slots = {
      TieSlot{0x201, 0}, TieSlot{0x202, 0x7F}, TieSlot{}};
  auto decoded = Decode(EncodeFlix(slots));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, DecodedWord::Kind::kFlix);
  EXPECT_EQ(decoded->slots, slots);
  EXPECT_EQ(decoded->num_slots(), 2);
}

TEST(EncodingTest, RejectsUnknownOpcode) {
  EXPECT_FALSE(Decode(0xFE).ok());
}

TEST(EncodingTest, RejectsEmptyFlix) {
  EXPECT_FALSE(Decode(kFlixFormatBit).ok());
}

TEST(OpcodeTest, Classification) {
  EXPECT_TRUE(IsBranch(Opcode::kBeq));
  EXPECT_FALSE(IsBranch(Opcode::kJ));
  EXPECT_TRUE(IsControlFlow(Opcode::kJ));
  EXPECT_TRUE(IsMemory(Opcode::kLw));
  EXPECT_TRUE(IsMemory(Opcode::kSw));
  EXPECT_FALSE(IsMemory(Opcode::kAdd));
  EXPECT_TRUE(IsValidOpcode(static_cast<uint8_t>(Opcode::kTie)));
  EXPECT_FALSE(IsValidOpcode(0x70));
}

// --- Assembler ---

TEST(AssemblerTest, BackwardBranchOffset) {
  Assembler masm;
  Label loop;
  masm.Movi(Reg::a6, 0);
  masm.Bind(&loop, "loop");
  masm.Addi(Reg::a6, Reg::a6, 1);
  masm.Blt(Reg::a6, Reg::a2, &loop);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok()) << program.status();
  auto branch = Decode(program->word(2));
  ASSERT_TRUE(branch.ok());
  EXPECT_EQ(branch->base.imm, -2);  // back to pc 1 from pc 2
  EXPECT_EQ(program->LabelAt(1), "loop");
}

TEST(AssemblerTest, ForwardBranchPatched) {
  Assembler masm;
  Label done;
  masm.Beq(Reg::a0, Reg::a1, &done);
  masm.Nop();
  masm.Nop();
  masm.Bind(&done, "done");
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  auto branch = Decode(program->word(0));
  EXPECT_EQ(branch->base.imm, 2);
}

TEST(AssemblerTest, UnboundLabelFails) {
  Assembler masm;
  Label nowhere;
  masm.J(&nowhere);
  masm.Halt();
  auto program = masm.Finish();
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("unbound"), std::string::npos);
}

TEST(AssemblerTest, DoubleBindFails) {
  Assembler masm;
  Label twice;
  masm.Bind(&twice);
  masm.Nop();
  masm.Bind(&twice);
  masm.Halt();
  EXPECT_FALSE(masm.Finish().ok());
}

TEST(AssemblerTest, ImmediateRangeChecked) {
  Assembler masm;
  masm.Addi(Reg::a0, Reg::a0, 5000);  // > 2047
  masm.Halt();
  EXPECT_FALSE(masm.Finish().ok());
}

TEST(AssemblerTest, ShiftRangeChecked) {
  Assembler masm;
  masm.Slli(Reg::a0, Reg::a0, 32);
  masm.Halt();
  EXPECT_FALSE(masm.Finish().ok());
}

TEST(AssemblerTest, FlixSlotCountChecked) {
  Assembler masm;
  masm.Flix({TieSlot{1, 0}, TieSlot{2, 0}, TieSlot{3, 0}, TieSlot{4, 0}});
  masm.Halt();
  EXPECT_FALSE(masm.Finish().ok());
}

TEST(AssemblerTest, TieZeroIdRejected) {
  Assembler masm;
  masm.Tie(0);
  masm.Halt();
  EXPECT_FALSE(masm.Finish().ok());
}

TEST(AssemblerTest, ReusableAfterFinish) {
  Assembler masm;
  masm.Halt();
  ASSERT_TRUE(masm.Finish().ok());
  masm.Nop();
  masm.Halt();
  auto second = masm.Finish();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 2u);
}

TEST(AssemblerTest, ErrorsReportPc) {
  Assembler masm;
  masm.Nop();
  masm.Movi(Reg::a0, 99999);
  auto program = masm.Finish();
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("pc 1"), std::string::npos);
}

// --- Disassembler ---

TEST(DisassemblerTest, FormatsBaseInstructions) {
  Assembler masm;
  masm.Add(Reg::a1, Reg::a2, Reg::a3);
  masm.Lw(Reg::a4, Reg::a5, 8);
  masm.Sw(Reg::a6, Reg::a7, -4);
  masm.Movi(Reg::a0, -5);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(DisassembleWord(*Decode(program->word(0))), "add a1, a2, a3");
  EXPECT_EQ(DisassembleWord(*Decode(program->word(1))), "lw a4, 8(a5)");
  EXPECT_EQ(DisassembleWord(*Decode(program->word(2))), "sw a6, -4(a7)");
  EXPECT_EQ(DisassembleWord(*Decode(program->word(3))), "movi a0, -5");
  EXPECT_EQ(DisassembleWord(*Decode(program->word(4))), "halt");
}

TEST(DisassemblerTest, UsesExtResolver) {
  Assembler masm;
  masm.Tie(0x205);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  auto resolver = [](uint16_t ext_id) {
    return ext_id == 0x205 ? std::string("sop") : std::string();
  };
  EXPECT_EQ(DisassembleWord(*Decode(program->word(0)), resolver), "sop");
  EXPECT_EQ(DisassembleWord(*Decode(program->word(0))), "tie.517");
}

TEST(DisassemblerTest, ProgramListingHasLabels) {
  Assembler masm;
  Label loop;
  masm.Bind(&loop, "loop");
  masm.J(&loop);
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  const std::string listing = DisassembleProgram(*program);
  EXPECT_NE(listing.find("loop:"), std::string::npos);
  EXPECT_NE(listing.find("j -1"), std::string::npos);
}

}  // namespace
}  // namespace dba::isa
