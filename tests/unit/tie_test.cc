#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/cpu.h"
#include "tie/example_extension.h"
#include "tie/tie_extension.h"
#include "tie/tie_state.h"

namespace dba::tie {
namespace {

using isa::Assembler;
using isa::Reg;

// --- TieState ---

TEST(TieStateTest, NarrowStateMasksToWidth) {
  TieState state("state8", 8, 0);
  state.Set(0x1FF);
  EXPECT_EQ(state.Get(), 0xFFu);
  EXPECT_EQ(state.width_bits(), 8);
  EXPECT_EQ(state.num_lanes(), 1);
}

TEST(TieStateTest, ResetRestoresPowerOnValue) {
  TieState state("s", 16, 0xAB);
  EXPECT_EQ(state.Get(), 0xABu);
  state.Set(0x1234);
  state.Reset();
  EXPECT_EQ(state.Get(), 0xABu);
}

TEST(TieStateTest, WideStateLanes) {
  TieState state("word_a", 128);
  EXPECT_EQ(state.num_lanes(), 4);
  state.set_lane(0, 11);
  state.set_lane(3, 44);
  EXPECT_EQ(state.lane(0), 11u);
  EXPECT_EQ(state.lane(3), 44u);
  state.Reset();
  EXPECT_EQ(state.lane(3), 0u);
}

TEST(TieStateTest, SixtyFourBitBoundary) {
  TieState state("s64", 64);
  state.Set(0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(state.Get(), 0xDEADBEEFCAFEF00Dull);
}

// --- TieRegisterFile ---

TEST(TieRegisterFileTest, ReadWriteMasked) {
  TieRegisterFile regfile("reg32", 32, 8);
  regfile.Write(3, 0x1'0000'0007ull);
  EXPECT_EQ(regfile.Read(3), 7u);
  EXPECT_EQ(regfile.num_regs(), 8);
  regfile.Reset();
  EXPECT_EQ(regfile.Read(3), 0u);
}

// --- TieExtension via the paper's Figure 5 example ---

class ExampleExtensionTest : public ::testing::Test {
 protected:
  ExampleExtensionTest() : cpu_(MakeConfig()) {
    EXPECT_TRUE(ext_.Attach(&cpu_).ok());
  }

  static sim::CoreConfig MakeConfig() {
    sim::CoreConfig config;
    config.instruction_bus_bits = 64;
    return config;
  }

  ExampleExtension ext_;
  sim::Cpu cpu_;
  isa::Program program_;

  Result<sim::ExecStats> Run(Assembler& masm) {
    auto program = masm.Finish();
    if (!program.ok()) return program.status();
    program_ = *std::move(program);
    DBA_RETURN_IF_ERROR(cpu_.LoadProgram(program_));
    return cpu_.Run();
  }
};

TEST_F(ExampleExtensionTest, StatesAndRegfilesDiscoverable) {
  EXPECT_NE(ext_.FindState("state8"), nullptr);
  EXPECT_NE(ext_.FindRegFile("reg32"), nullptr);
  EXPECT_EQ(ext_.FindState("nope"), nullptr);
  EXPECT_EQ(ext_.FindRegFile("nope"), nullptr);
}

TEST_F(ExampleExtensionTest, Add3ShiftMatchesFigure5) {
  // Figure 5d: reg32 v0..v2; WUR_state8(4); value = add3_shift(v0,v1,v2).
  ext_.FindRegFile("reg32")->Write(0, 100);
  ext_.FindRegFile("reg32")->Write(1, 200);
  ext_.FindRegFile("reg32")->Write(2, 4);

  Assembler masm;
  masm.Tie(ExampleExtension::kWurState8, 4);
  // add3_shift: in0=r0, in1=r1, in2=r2, result in a2.
  const uint16_t operand = 0 | (1 << 3) | (2 << 6) | (2 << 9);
  masm.Tie(ExampleExtension::kAdd3Shift, operand);
  masm.Halt();
  ASSERT_TRUE(Run(masm).ok());
  EXPECT_EQ(cpu_.reg(Reg::a2), (100u + 200u + 4u) >> 4);
  EXPECT_EQ(ext_.FindState("state8")->Get(), 4u);
}

TEST_F(ExampleExtensionTest, SingleCycleOperation) {
  Assembler masm;
  masm.Tie(ExampleExtension::kAdd3Shift, 0);
  masm.Halt();
  auto stats = Run(masm);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cycles, 2u);  // the operation + halt
}

TEST_F(ExampleExtensionTest, WrReg32TakesValueFromA7) {
  Assembler masm;
  masm.Movi(Reg::a7, 77);
  masm.Tie(ExampleExtension::kWrReg32, 5);
  masm.Halt();
  ASSERT_TRUE(Run(masm).ok());
  EXPECT_EQ(ext_.FindRegFile("reg32")->Read(5), 77u);
}

TEST_F(ExampleExtensionTest, OperationsComposeInFlixBundle) {
  ext_.FindRegFile("reg32")->Write(0, 8);
  Assembler masm;
  // wur + add3_shift in one 64-bit FLIX word: both see the same cycle;
  // the state write is visible to the later slot (sequential slot
  // semantics within the bundle). FLIX slot operands are 8 bits, so the
  // destination must be a0 (rd field bits [11:9] zero).
  masm.Flix({isa::TieSlot{ExampleExtension::kWurState8, 1},
             isa::TieSlot{ExampleExtension::kAdd3Shift, 0}});
  masm.Halt();
  auto stats = Run(masm);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->cycles, 2u);
  EXPECT_EQ(cpu_.reg(Reg::a0), (8u + 8u + 8u) >> 1);
}

TEST_F(ExampleExtensionTest, ResetStateRestoresAll) {
  ext_.FindState("state8")->Set(9);
  ext_.FindRegFile("reg32")->Write(0, 1);
  ext_.ResetState();
  EXPECT_EQ(ext_.FindState("state8")->Get(), 0u);
  EXPECT_EQ(ext_.FindRegFile("reg32")->Read(0), 0u);
}

TEST(TieExtensionTest, AttachTwiceFails) {
  sim::CoreConfig config;
  sim::Cpu cpu(config);
  ExampleExtension ext;
  ASSERT_TRUE(ext.Attach(&cpu).ok());
  EXPECT_EQ(ext.Attach(&cpu).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace dba::tie
