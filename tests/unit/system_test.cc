#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/scalar_baseline.h"
#include "core/workload.h"
#include "system/board.h"
#include "system/noc.h"

namespace dba::system {
namespace {

TEST(NocTest, BandwidthSharing) {
  Noc noc({.link_bytes_per_cycle = 32.0,
           .bisection_bytes_per_cycle = 128.0,
           .transfer_latency_cycles = 10});
  // Few streams: link-limited. Many streams: bisection-limited.
  EXPECT_DOUBLE_EQ(noc.BandwidthPerStream(1), 32.0);
  EXPECT_DOUBLE_EQ(noc.BandwidthPerStream(4), 32.0);
  EXPECT_DOUBLE_EQ(noc.BandwidthPerStream(8), 16.0);
  EXPECT_EQ(noc.TransferCycles(0, 4), 0u);
  EXPECT_EQ(noc.TransferCycles(320, 1), 10u + 10u);
  EXPECT_EQ(noc.TransferCycles(320, 8), 10u + 20u);
}

TEST(BoardTest, CreateValidates) {
  BoardConfig config;
  config.num_cores = 0;
  EXPECT_FALSE(Board::Create(config).ok());
  config.num_cores = 4;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  EXPECT_EQ((*board)->num_cores(), 4);
  EXPECT_NEAR((*board)->board_power_mw(), 4 * 135.1, 1.0);
}

class BoardOpTest : public ::testing::TestWithParam<SetOp> {};

TEST_P(BoardOpTest, ParallelResultMatchesReference) {
  BoardConfig config;
  config.num_cores = 8;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  auto pair = GenerateSetPair(60000, 50000, 0.4, 99);
  ASSERT_TRUE(pair.ok());
  auto run = (*board)->RunSetOperation(GetParam(), pair->a, pair->b);
  ASSERT_TRUE(run.ok()) << run.status();
  std::vector<uint32_t> expected;
  switch (GetParam()) {
    case SetOp::kIntersect:
      expected = baseline::ScalarIntersect(pair->a, pair->b);
      break;
    case SetOp::kUnion:
      expected = baseline::ScalarUnion(pair->a, pair->b);
      break;
    case SetOp::kDifference:
      expected = baseline::ScalarDifference(pair->a, pair->b);
      break;
    default:
      break;
  }
  EXPECT_EQ(run->result, expected);
  EXPECT_GT(run->makespan_cycles, 0u);
  EXPECT_GE(run->total_core_cycles, run->makespan_cycles);
  EXPECT_GT(run->throughput_meps, 0.0);
  EXPECT_GT(run->energy_uj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ops, BoardOpTest,
                         ::testing::Values(SetOp::kIntersect, SetOp::kUnion,
                                           SetOp::kDifference),
                         [](const ::testing::TestParamInfo<SetOp>& info_p) {
                           return std::string(
                               eis::SopModeName(info_p.param));
                         });

TEST(BoardTest, MoreCoresMoreThroughput) {
  auto pair = GenerateSetPair(120000, 120000, 0.5, 7);
  ASSERT_TRUE(pair.ok());
  double previous = 0;
  for (int cores : {1, 4, 16}) {
    BoardConfig config;
    config.num_cores = cores;
    // Generous interconnect so scaling is compute-limited.
    config.noc.bisection_bytes_per_cycle = 4096.0;
    auto board = Board::Create(config);
    ASSERT_TRUE(board.ok());
    auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    ASSERT_TRUE(run.ok());
    EXPECT_GT(run->throughput_meps, previous * 1.5)
        << cores << " cores";
    previous = run->throughput_meps;
  }
}

TEST(BoardTest, NarrowBisectionBecomesNocBound) {
  auto pair = GenerateSetPair(60000, 60000, 0.5, 8);
  ASSERT_TRUE(pair.ok());
  BoardConfig config;
  config.num_cores = 16;
  config.noc.bisection_bytes_per_cycle = 8.0;  // starved
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->noc_bound);
}

TEST(BoardTest, ParallelSortMatchesStdSort) {
  BoardConfig config;
  config.num_cores = 8;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  for (uint32_t n : {0u, 1u, 100u, 5000u, 80000u}) {
    std::vector<uint32_t> values = GenerateSortInput(n, n + 3);
    auto run = (*board)->RunSort(values);
    ASSERT_TRUE(run.ok()) << "n=" << n << ": " << run.status();
    std::vector<uint32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(run->result, expected) << "n=" << n;
  }
}

TEST(BoardTest, SkewedSortStillCorrect) {
  // All values equal: one bucket takes everything.
  BoardConfig config;
  config.num_cores = 8;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  std::vector<uint32_t> values(20000, 42);
  auto run = (*board)->RunSort(values);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result, values);
}

TEST(BoardTest, SingleCoreBoardEqualsProcessor) {
  BoardConfig config;
  config.num_cores = 1;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  auto pair = GenerateSetPair(4000, 4000, 0.5, 12);
  ASSERT_TRUE(pair.ok());
  auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result, baseline::ScalarIntersect(pair->a, pair->b));
}

}  // namespace
}  // namespace dba::system
