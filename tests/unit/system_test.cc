#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <span>
#include <vector>

#include "baseline/scalar_baseline.h"
#include "core/workload.h"
#include "system/board.h"
#include "system/noc.h"

namespace dba::system {
namespace {

TEST(NocTest, BandwidthSharing) {
  Noc noc({.link_bytes_per_cycle = 32.0,
           .bisection_bytes_per_cycle = 128.0,
           .transfer_latency_cycles = 10});
  // Few streams: link-limited. Many streams: bisection-limited.
  EXPECT_DOUBLE_EQ(noc.BandwidthPerStream(1), 32.0);
  EXPECT_DOUBLE_EQ(noc.BandwidthPerStream(4), 32.0);
  EXPECT_DOUBLE_EQ(noc.BandwidthPerStream(8), 16.0);
  EXPECT_EQ(noc.TransferCycles(0, 4), 0u);
  EXPECT_EQ(noc.TransferCycles(320, 1), 10u + 10u);
  EXPECT_EQ(noc.TransferCycles(320, 8), 10u + 20u);
}

TEST(BoardTest, CreateValidates) {
  BoardConfig config;
  config.num_cores = 0;
  EXPECT_FALSE(Board::Create(config).ok());
  config.num_cores = 4;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  EXPECT_EQ((*board)->num_cores(), 4);
  EXPECT_NEAR((*board)->board_power_mw(), 4 * 135.1, 1.0);
}

class BoardOpTest : public ::testing::TestWithParam<SetOp> {};

TEST_P(BoardOpTest, ParallelResultMatchesReference) {
  BoardConfig config;
  config.num_cores = 8;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  auto pair = GenerateSetPair(60000, 50000, 0.4, 99);
  ASSERT_TRUE(pair.ok());
  auto run = (*board)->RunSetOperation(GetParam(), pair->a, pair->b);
  ASSERT_TRUE(run.ok()) << run.status();
  std::vector<uint32_t> expected;
  switch (GetParam()) {
    case SetOp::kIntersect:
      expected = baseline::ScalarIntersect(pair->a, pair->b);
      break;
    case SetOp::kUnion:
      expected = baseline::ScalarUnion(pair->a, pair->b);
      break;
    case SetOp::kDifference:
      expected = baseline::ScalarDifference(pair->a, pair->b);
      break;
    default:
      break;
  }
  EXPECT_EQ(run->result, expected);
  EXPECT_GT(run->makespan_cycles, 0u);
  EXPECT_GE(run->total_core_cycles, run->makespan_cycles);
  EXPECT_GT(run->throughput_meps, 0.0);
  EXPECT_GT(run->energy_uj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ops, BoardOpTest,
                         ::testing::Values(SetOp::kIntersect, SetOp::kUnion,
                                           SetOp::kDifference),
                         [](const ::testing::TestParamInfo<SetOp>& info_p) {
                           return std::string(
                               eis::SopModeName(info_p.param));
                         });

TEST(BoardTest, MoreCoresMoreThroughput) {
  auto pair = GenerateSetPair(120000, 120000, 0.5, 7);
  ASSERT_TRUE(pair.ok());
  double previous = 0;
  for (int cores : {1, 4, 16}) {
    BoardConfig config;
    config.num_cores = cores;
    // Generous interconnect so scaling is compute-limited.
    config.noc.bisection_bytes_per_cycle = 4096.0;
    auto board = Board::Create(config);
    ASSERT_TRUE(board.ok());
    auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    ASSERT_TRUE(run.ok());
    EXPECT_GT(run->throughput_meps, previous * 1.5)
        << cores << " cores";
    previous = run->throughput_meps;
  }
}

TEST(BoardTest, NarrowBisectionBecomesNocBound) {
  auto pair = GenerateSetPair(60000, 60000, 0.5, 8);
  ASSERT_TRUE(pair.ok());
  BoardConfig config;
  config.num_cores = 16;
  config.noc.bisection_bytes_per_cycle = 8.0;  // starved
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->noc_bound);
}

TEST(BoardTest, ParallelSortMatchesStdSort) {
  BoardConfig config;
  config.num_cores = 8;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  for (uint32_t n : {0u, 1u, 100u, 5000u, 80000u}) {
    std::vector<uint32_t> values = GenerateSortInput(n, n + 3);
    auto run = (*board)->RunSort(values);
    ASSERT_TRUE(run.ok()) << "n=" << n << ": " << run.status();
    std::vector<uint32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(run->result, expected) << "n=" << n;
  }
}

TEST(BoardTest, SkewedSortStillCorrect) {
  // All values equal: one bucket takes everything.
  BoardConfig config;
  config.num_cores = 8;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  std::vector<uint32_t> values(20000, 42);
  auto run = (*board)->RunSort(values);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result, values);
}

TEST(BoardTest, SingleCoreBoardEqualsProcessor) {
  BoardConfig config;
  config.num_cores = 1;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  auto pair = GenerateSetPair(4000, 4000, 0.5, 12);
  ASSERT_TRUE(pair.ok());
  auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result, baseline::ScalarIntersect(pair->a, pair->b));
}

// --- RunSetOperationBatch (multi-request scheduling) ---

std::vector<uint32_t> ScalarReference(SetOp op, std::span<const uint32_t> a,
                                      std::span<const uint32_t> b) {
  switch (op) {
    case SetOp::kIntersect:
      return baseline::ScalarIntersect(a, b);
    case SetOp::kUnion:
      return baseline::ScalarUnion(a, b);
    case SetOp::kDifference:
      return baseline::ScalarDifference(a, b);
    case SetOp::kMerge: {
      std::vector<uint32_t> merged;
      merged.reserve(a.size() + b.size());
      std::merge(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
      return merged;
    }
  }
  return {};
}

struct SetPairVectors {
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
};

/// A mixed-op batch with more items than a small board has cores, so
/// every core runs several items back to back (waves).
struct BatchFixture {
  std::vector<SetPairVectors> pairs;
  std::vector<Board::BatchItem> items;
};

BatchFixture MakeBatch(size_t n, uint64_t seed) {
  BatchFixture fixture;
  fixture.pairs.reserve(n);
  const SetOp ops[] = {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference,
                       SetOp::kMerge};
  for (size_t i = 0; i < n; ++i) {
    auto pair = GenerateSetPair(500 + 37 * static_cast<uint32_t>(i),
                                400 + 53 * static_cast<uint32_t>(i), 0.4,
                                seed + i);
    EXPECT_TRUE(pair.ok()) << pair.status();
    fixture.pairs.push_back({pair->a, pair->b});
  }
  for (size_t i = 0; i < n; ++i) {
    fixture.items.push_back({ops[i % 4], fixture.pairs[i].a,
                             fixture.pairs[i].b});
  }
  return fixture;
}

TEST(BoardBatchTest, MixedOpsMatchPerItemReference) {
  BoardConfig config;
  config.num_cores = 4;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());
  // 11 items on 4 cores: three waves, uneven tail.
  const BatchFixture fixture = MakeBatch(11, 2026);
  auto run = (*board)->RunSetOperationBatch(fixture.items);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->results.size(), fixture.items.size());
  for (size_t i = 0; i < fixture.items.size(); ++i) {
    EXPECT_EQ(run->results[i],
              ScalarReference(fixture.items[i].op, fixture.items[i].a,
                              fixture.items[i].b))
        << "item " << i;
  }
  EXPECT_TRUE(run->run.result.empty());  // outputs live in results
  EXPECT_GT(run->run.makespan_cycles, 0u);
}

TEST(BoardBatchTest, BitIdenticalAcrossHostThreads) {
  const BatchFixture fixture = MakeBatch(9, 7);
  std::vector<std::vector<std::vector<uint32_t>>> outputs;
  for (const int host_threads : {1, 2, 8}) {
    BoardConfig config;
    config.num_cores = 4;
    config.host_threads = host_threads;
    auto board = Board::Create(config);
    ASSERT_TRUE(board.ok());
    auto run = (*board)->RunSetOperationBatch(fixture.items);
    ASSERT_TRUE(run.ok()) << run.status();
    outputs.push_back(std::move(run->results));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

TEST(BoardBatchTest, EmptyBatchAndEmptySides) {
  BoardConfig config;
  config.num_cores = 2;
  auto board = Board::Create(config);
  ASSERT_TRUE(board.ok());

  auto empty = (*board)->RunSetOperationBatch({});
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->results.empty());

  const std::vector<uint32_t> some = {3, 9, 27, 81};
  const std::vector<uint32_t> none;
  const std::vector<Board::BatchItem> items = {
      {SetOp::kIntersect, some, none},
      {SetOp::kUnion, none, some},
      {SetOp::kDifference, some, none},
      {SetOp::kMerge, none, some},
      {SetOp::kIntersect, none, none},
  };
  auto run = (*board)->RunSetOperationBatch(items);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->results.size(), 5u);
  EXPECT_TRUE(run->results[0].empty());   // intersect with empty side
  EXPECT_EQ(run->results[1], some);       // union keeps non-empty side
  EXPECT_EQ(run->results[2], some);       // difference keeps a
  EXPECT_EQ(run->results[3], some);       // merge keeps non-empty side
  EXPECT_TRUE(run->results[4].empty());
}

TEST(BoardBatchTest, RecoversBitExactWithBrokenCore) {
  const BatchFixture fixture = MakeBatch(8, 314);

  BoardConfig faulty;
  faulty.num_cores = 4;
  faulty.fault_plan.broken_cores = {1};
  faulty.fault_plan.hang_watchdog_cycles = 2000;
  auto board = Board::Create(faulty);
  ASSERT_TRUE(board.ok());
  auto run = (*board)->RunSetOperationBatch(fixture.items);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->results.size(), fixture.items.size());
  for (size_t i = 0; i < fixture.items.size(); ++i) {
    EXPECT_EQ(run->results[i],
              ScalarReference(fixture.items[i].op, fixture.items[i].a,
                              fixture.items[i].b))
        << "item " << i;
  }
  // The broken core failed its items; recovery rescheduled them.
  EXPECT_GT(run->run.recovery.faults_injected, 0u);
  EXPECT_GT(run->run.recovery.failed_attempts, 0u);
}

}  // namespace
}  // namespace dba::system
