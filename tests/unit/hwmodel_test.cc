// The hardware model must reproduce the published synthesis results
// (paper Tables 3 and 4) -- these tests pin the calibration.

#include <gtest/gtest.h>

#include <cmath>

#include "hwmodel/reference.h"
#include "hwmodel/synthesis.h"

namespace dba::hwmodel {
namespace {

constexpr double kTightTolerance = 0.01;  // calibrated cells
constexpr double kLooseTolerance = 0.05;  // derived cells

void ExpectNear(double actual, double expected, double relative_tolerance,
                const char* what) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * relative_tolerance)
      << what;
}

struct Table3Row {
  ConfigKind kind;
  TechNode node;
  double logic;
  double mem;
  double fmax;
  double power;
};

// Paper Table 3.
const Table3Row kTable3[] = {
    {ConfigKind::k108Mini, TechNode::k65nmTsmcLp, 0.2201, 0.0, 442, 27.4},
    {ConfigKind::kDba1Lsu, TechNode::k65nmTsmcLp, 0.177, 0.874, 435, 56.6},
    {ConfigKind::kDba2Lsu, TechNode::k65nmTsmcLp, 0.177, 0.870, 429, 57.1},
    {ConfigKind::kDba1LsuEis, TechNode::k65nmTsmcLp, 0.523, 0.874, 424,
     123.5},
    {ConfigKind::kDba2LsuEis, TechNode::k65nmTsmcLp, 0.645, 0.870, 410,
     135.1},
    {ConfigKind::kDba2LsuEis, TechNode::k28nmGfSlp, 0.169, 0.232, 500, 47.0},
};

TEST(SynthesisTest, ReproducesTable3) {
  for (const Table3Row& row : kTable3) {
    const SynthesisReport report = Synthesize(row.kind, row.node);
    SCOPED_TRACE(std::string(ConfigKindName(row.kind)) + " @ " +
                 std::string(TechNodeName(row.node)));
    ExpectNear(report.logic_area_mm2, row.logic, kLooseTolerance, "logic");
    if (row.mem > 0) {
      ExpectNear(report.mem_area_mm2, row.mem, kLooseTolerance, "mem");
    } else {
      EXPECT_EQ(report.mem_area_mm2, 0.0);
    }
    ExpectNear(report.fmax_mhz, row.fmax, kTightTolerance, "fmax");
    ExpectNear(report.power_mw, row.power, kLooseTolerance, "power");
  }
}

TEST(SynthesisTest, EisConfigsAreLargerAndHungrier) {
  const auto base = Synthesize(ConfigKind::kDba2Lsu, TechNode::k65nmTsmcLp);
  const auto eis = Synthesize(ConfigKind::kDba2LsuEis, TechNode::k65nmTsmcLp);
  EXPECT_GT(eis.logic_area_mm2, base.logic_area_mm2);
  EXPECT_GT(eis.power_mw, base.power_mw);
  EXPECT_LT(eis.fmax_mhz, base.fmax_mhz);
  // "only a small impact on the core frequency" -- under 10%.
  EXPECT_GT(eis.fmax_mhz, 0.9 * base.fmax_mhz);
}

TEST(SynthesisTest, MemoryDominatesBaseArea) {
  const auto report = Synthesize(ConfigKind::kDba1Lsu, TechNode::k65nmTsmcLp);
  EXPECT_GT(report.mem_area_mm2, report.logic_area_mm2);
  EXPECT_NEAR(report.total_area_mm2(),
              report.logic_area_mm2 + report.mem_area_mm2, 1e-12);
}

TEST(SynthesisTest, TechScalingMatchesPaperFactors) {
  const auto at65 = Synthesize(ConfigKind::kDba2LsuEis, TechNode::k65nmTsmcLp);
  const auto at28 = Synthesize(ConfigKind::kDba2LsuEis, TechNode::k28nmGfSlp);
  // "the area occupied by DBA_2LSU_EIS shrinks by 3.8x"
  ExpectNear(at65.total_area_mm2() / at28.total_area_mm2(), 3.8, 0.02,
             "area scale");
  // "the power consumed ... shrinks by 2.9x to 47 mW"
  ExpectNear(at65.power_mw / at28.power_mw, 2.875, 0.02, "power scale");
  EXPECT_EQ(at28.fmax_mhz, 500.0);
}

TEST(SynthesisTest, ReproducesTable4Breakdown) {
  const auto breakdown = EisAreaBreakdown();
  ASSERT_EQ(breakdown.size(), 8u);
  // Paper Table 4 percentages.
  const std::pair<const char*, double> expected[] = {
      {"basic core", 20.5},     {"decoding/muxing", 14.4},
      {"states", 14.7},         {"op: all", 11.3},
      {"op: intersection", 6.8}, {"op: difference", 9.0},
      {"op: union", 17.6},      {"op: merge-sort", 5.7},
  };
  double total_percent = 0;
  for (size_t i = 0; i < breakdown.size(); ++i) {
    EXPECT_EQ(breakdown[i].part, expected[i].first);
    EXPECT_NEAR(breakdown[i].percent, expected[i].second, 0.3)
        << breakdown[i].part;
    total_percent += breakdown[i].percent;
  }
  EXPECT_NEAR(total_percent, 100.0, 1e-9);
}

TEST(SynthesisTest, UnionCircuitIsTheLargestOperation) {
  // "whereby the union operation is most expensive" (Section 5.3).
  const auto breakdown = EisAreaBreakdown();
  double union_area = 0;
  double max_other_op = 0;
  for (const auto& entry : breakdown) {
    if (entry.part == "op: union") {
      union_area = entry.area_mm2;
    } else if (entry.part.rfind("op:", 0) == 0) {
      max_other_op = std::max(max_other_op, entry.area_mm2);
    }
  }
  EXPECT_GT(union_area, max_other_op);
}

TEST(MemoryPlanTest, MatchesSection51) {
  const MemoryPlan mini = MemoryPlanFor(ConfigKind::k108Mini);
  EXPECT_FALSE(mini.has_local_store);
  const MemoryPlan one = MemoryPlanFor(ConfigKind::kDba1LsuEis);
  EXPECT_EQ(one.data_kib, 64u);
  EXPECT_EQ(one.instruction_kib, 32u);
  EXPECT_EQ(one.data_banks, 1);
  const MemoryPlan two = MemoryPlanFor(ConfigKind::kDba2LsuEis);
  EXPECT_EQ(two.data_kib, 64u);  // 32 KiB per LSU
  EXPECT_EQ(two.data_banks, 2);
}

TEST(ReferenceTest, EnergyArithmetic) {
  // 960x headline: i7-920 at 130 W vs DBA_2LSU_EIS at 135.1 mW.
  const auto report = Synthesize(ConfigKind::kDba2LsuEis,
                                 TechNode::k65nmTsmcLp);
  const double ratio = PowerRatio(IntelI7920(), report.power_mw);
  EXPECT_GT(ratio, 900.0);
  EXPECT_LT(ratio, 1000.0);
  // Energy per element at the paper's 1203 M elem/s.
  const double nj = EnergyPerElementNj(report.power_mw, 1203.0);
  EXPECT_NEAR(nj, 0.112, 0.01);
  EXPECT_EQ(EnergyPerElementNj(report.power_mw, 0.0), 0.0);
}

TEST(ReferenceTest, DatasheetConstants) {
  const X86Reference q9550 = IntelQ9550();
  EXPECT_EQ(q9550.cores, 4);
  EXPECT_EQ(q9550.feature_nm, 45);
  EXPECT_EQ(q9550.paper_throughput_meps, 60.0);
  const X86Reference i7 = IntelI7920();
  EXPECT_EQ(i7.threads, 8);
  EXPECT_EQ(i7.paper_throughput_meps, 1100.0);
}

TEST(ReferenceTest, PowerDensityStaysCool) {
  // Section 1's dark-silicon argument: the accelerator die dissipates an
  // order of magnitude less power per area than a general-purpose die.
  const auto report = Synthesize(ConfigKind::kDba2LsuEis,
                                 TechNode::k65nmTsmcLp);
  const double dba = PowerDensityWPerCm2(report.power_mw,
                                         report.total_area_mm2());
  const double i7 = PowerDensityWPerCm2(IntelI7920().max_tdp_w * 1000.0,
                                        IntelI7920().die_area_mm2);
  EXPECT_GT(dba, 1.0);
  EXPECT_LT(dba, 15.0);
  EXPECT_GT(i7 / dba, 4.0);
  EXPECT_EQ(PowerDensityWPerCm2(100.0, 0.0), 0.0);
}

TEST(ConfigKindTest, NamesAreStable) {
  EXPECT_EQ(ConfigKindName(ConfigKind::k108Mini), "108Mini");
  EXPECT_EQ(ConfigKindName(ConfigKind::kDba2LsuEis), "DBA_2LSU_EIS");
  EXPECT_EQ(TechNodeName(TechNode::k65nmTsmcLp), "65 nm");
  EXPECT_EQ(TechNodeName(TechNode::k28nmGfSlp), "28 nm");
}

}  // namespace
}  // namespace dba::hwmodel
