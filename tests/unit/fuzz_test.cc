// Hardening: the simulator must degrade gracefully on arbitrary input --
// random words either fail to decode or execute under the watchdog with
// a clean Status; the EIS datapath survives arbitrary operation orders;
// kernels with corrupted pointers report memory errors instead of
// corrupting state.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/processor.h"
#include "core/workload.h"
#include "eis/eis_extension.h"
#include "isa/assembler.h"
#include "isa/encoding.h"
#include "mem/memory.h"
#include "query/predicate.h"
#include "service/query_service.h"
#include "shared/service_test_util.h"
#include "sim/cpu.h"
#include "system/board.h"

namespace dba {
namespace {

TEST(DecodeFuzzTest, ArbitraryWordsNeverMisbehave) {
  Random rng(0xFEED);
  int decoded_count = 0;
  for (int trial = 0; trial < 200000; ++trial) {
    auto word = isa::Decode(rng.Next64());
    if (word.ok()) {
      ++decoded_count;
      // Re-encoding a decoded base word must round-trip.
      if (word->kind == isa::DecodedWord::Kind::kBase) {
        auto again = isa::Decode(isa::EncodeBase(word->base));
        ASSERT_TRUE(again.ok());
        ASSERT_EQ(again->base, word->base);
      }
    }
  }
  // FLIX-tagged words mostly decode; base words depend on the opcode
  // byte. Either way a healthy fraction decodes.
  EXPECT_GT(decoded_count, 1000);
}

TEST(CpuFuzzTest, RandomProgramsTerminateCleanly) {
  Random rng(0xCAFE);
  auto memory = mem::Memory::Create(
      {.name = "m", .base = 0x1000, .size = 4096, .access_latency = 1});
  ASSERT_TRUE(memory.ok());

  for (int trial = 0; trial < 300; ++trial) {
    sim::CoreConfig config;
    config.instruction_bus_bits = 64;
    sim::Cpu cpu(config);
    ASSERT_TRUE(cpu.AttachMemory(&*memory).ok());

    // Random word soup, halt-terminated half the time.
    std::vector<uint64_t> words;
    const auto length = 1 + rng.Uniform(20);
    for (uint64_t i = 0; i < length; ++i) {
      // Bias toward valid encodings so some programs actually run.
      if (rng.Bernoulli(0.7)) {
        isa::Instruction instr;
        instr.opcode = static_cast<isa::Opcode>(rng.Uniform(0x48));
        instr.rd = isa::RegFromIndex(static_cast<int>(rng.Uniform(16)));
        instr.rs1 = isa::RegFromIndex(static_cast<int>(rng.Uniform(16)));
        instr.rs2 = isa::RegFromIndex(static_cast<int>(rng.Uniform(16)));
        instr.imm = static_cast<int32_t>(rng.Uniform(4096)) - 2048;
        words.push_back(isa::EncodeBase(instr));
      } else {
        words.push_back(rng.Next64());
      }
    }
    if (rng.Bernoulli(0.5)) {
      isa::Instruction halt;
      halt.opcode = isa::Opcode::kHalt;
      words.push_back(isa::EncodeBase(halt));
    }
    isa::Program program(std::move(words), {});

    const Status load_status = cpu.LoadProgram(program);
    if (!load_status.ok()) continue;  // rejected cleanly
    auto stats = cpu.Run({.max_cycles = 50000});
    // Either halts, or errors (bad pc/memory/deadline); never hangs or
    // crashes.
    if (!stats.ok()) {
      EXPECT_NE(stats.status().code(), StatusCode::kOk);
    }
  }
}

TEST(EisDatapathFuzzTest, ArbitraryOperationOrdersSurvive) {
  Random rng(0xD00D);
  constexpr uint64_t kABase = 0x1000;
  constexpr uint64_t kBBase = 0x4000;
  constexpr uint64_t kCBase = 0x8000;

  for (int trial = 0; trial < 150; ++trial) {
    sim::CoreConfig config;
    config.num_lsus = 2;
    config.data_bus_bits = 128;
    config.instruction_bus_bits = 64;
    sim::Cpu cpu(config);
    auto memory = mem::Memory::Create(
        {.name = "m", .base = kABase, .size = 64 << 10,
         .access_latency = 1});
    ASSERT_TRUE(memory.ok());
    ASSERT_TRUE(cpu.AttachMemory(&*memory).ok());
    eis::EisExtension ext;
    ASSERT_TRUE(ext.Attach(&cpu).ok());

    auto pair = GenerateSetPair(
        static_cast<uint32_t>(rng.Uniform(200)),
        static_cast<uint32_t>(rng.Uniform(200)), rng.NextDouble(),
        rng.Next64());
    ASSERT_TRUE(pair.ok());
    ASSERT_TRUE(memory->WriteBlock(kABase, pair->a).ok());
    ASSERT_TRUE(memory->WriteBlock(kBBase, pair->b).ok());

    isa::Assembler masm;
    masm.Tie(eis::op::kInit,
             eis::MakeInitOperand(
                 static_cast<eis::SopMode>(rng.Uniform(3)),
                 rng.Bernoulli(0.5)));
    const uint16_t ops[] = {eis::op::kLd0,  eis::op::kLd1,
                            eis::op::kLdP0, eis::op::kLdP1,
                            eis::op::kSop,  eis::op::kStS,
                            eis::op::kSt,   eis::op::kStoreSop,
                            eis::op::kLdLdpShuffle};
    const auto op_count = 5 + rng.Uniform(60);
    for (uint64_t i = 0; i < op_count; ++i) {
      masm.Tie(ops[rng.Uniform(std::size(ops))], 6);
    }
    masm.Tie(eis::op::kFlush);
    masm.Halt();
    auto program = masm.Finish();
    ASSERT_TRUE(program.ok());

    cpu.ResetArchState();
    cpu.set_reg(isa::abi::kPtrA, kABase);
    cpu.set_reg(isa::abi::kPtrB, kBBase);
    cpu.set_reg(isa::abi::kLenA, static_cast<uint32_t>(pair->a.size()));
    cpu.set_reg(isa::abi::kLenB, static_cast<uint32_t>(pair->b.size()));
    cpu.set_reg(isa::abi::kPtrC, kCBase);
    ASSERT_TRUE(cpu.LoadProgram(*program).ok());
    auto stats = cpu.Run({.max_cycles = 100000});
    ASSERT_TRUE(stats.ok()) << "trial " << trial << ": " << stats.status();
    // The flushed result count is bounded by what was consumable.
    EXPECT_LE(ext.result_count(), pair->a.size() + pair->b.size());
  }
}

TEST(KernelFaultInjectionTest, BadPointersReportMemoryErrors) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  // Drive the cpu directly with a corrupted pointer: the EIS program
  // must surface OutOfRange/NotFound, not crash.
  auto program = (*processor)->setop_program(SetOp::kIntersect, false);
  ASSERT_TRUE(program.ok());
  sim::Cpu& cpu = (*processor)->cpu();
  ASSERT_TRUE(cpu.LoadProgram(**program).ok());
  cpu.ResetArchState();
  (*processor)->eis()->ResetState();
  cpu.set_reg(isa::abi::kPtrA, 0xDEAD0000);  // unmapped
  cpu.set_reg(isa::abi::kLenA, 64);
  cpu.set_reg(isa::abi::kPtrB, 0xDEAD4000);
  cpu.set_reg(isa::abi::kLenB, 64);
  cpu.set_reg(isa::abi::kPtrC, 0xDEAD8000);
  auto stats = cpu.Run({.max_cycles = 100000});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST(TraceTest, RecordsRenderedInstructions) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  auto pair = GenerateSetPair(64, 64, 0.5, 1);
  ASSERT_TRUE(pair.ok());
  // Trace through the advanced interface.
  auto program = (*processor)->setop_program(SetOp::kIntersect, false);
  ASSERT_TRUE(program.ok());
  sim::Cpu& cpu = (*processor)->cpu();
  ASSERT_TRUE(cpu.LoadProgram(**program).ok());
  cpu.ResetArchState();
  (*processor)->eis()->ResetState();
  // Use the processor's own memory map via a normal run first to place
  // data, then re-run traced with the same registers.
  auto warm = (*processor)->RunSetOperation(SetOp::kIntersect, pair->a,
                                            pair->b);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cpu.LoadProgram(**program).ok());
  cpu.ResetArchState();
  (*processor)->eis()->ResetState();
  cpu.set_reg(isa::abi::kPtrA, 0x10000);
  cpu.set_reg(isa::abi::kPtrB, 0x100000);
  cpu.set_reg(isa::abi::kLenA, static_cast<uint32_t>(pair->a.size()));
  cpu.set_reg(isa::abi::kLenB, static_cast<uint32_t>(pair->b.size()));
  cpu.set_reg(isa::abi::kPtrC, 0x200000);
  auto stats = cpu.Run({.trace_limit = 10});
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->trace.size(), 10u);
  // The second issued word is the EIS INIT.
  EXPECT_NE(stats->trace[1].find("init"), std::string::npos);
  bool found_fused = false;
  for (const std::string& line : stats->trace) {
    found_fused |= line.find("store_sop") != std::string::npos ||
                   line.find("ld_ldp_shuffle") != std::string::npos;
  }
  EXPECT_TRUE(found_fused);
}

// Service-submission fuzzer: arbitrary request streams -- malformed
// predicates over unknown columns or tables, zero-length sets, shared
// and duplicate tenant ids, random priorities and already-expired
// deadlines -- must never crash the service, and every OK response must
// match a serial recompute of the same request.
TEST(ServiceFuzzTest, ArbitrarySubmissionsNeverCrashNorLie) {
  using service::ServiceRequest;
  using service::ServiceResponse;

  constexpr uint32_t kRows = 128;
  constexpr uint64_t kTableSeed = 0xF00D;
  system::BoardConfig board_config;
  board_config.num_cores = 2;
  board_config.host_threads = 2;
  auto board = system::Board::Create(board_config);
  ASSERT_TRUE(board.ok());

  service::ServiceConfig config;
  config.board = board->get();
  config.queue_capacity = 64;
  auto service = *service::QueryService::Create(config);
  ASSERT_TRUE(service
                  ->RegisterTable(std::make_unique<query::Table>(
                      service::test::MakeServiceTable("orders", kRows,
                                                      kTableSeed)))
                  .ok());
  service::test::SerialReference reference("orders", kRows, kTableSeed);

  const auto good_pool = service::test::MakePredicatePool(6);
  // Predicates the engine must reject cleanly (unknown column) and
  // tables that do not exist.
  const std::vector<std::shared_ptr<const query::Predicate>> bad_pool = {
      std::shared_ptr<const query::Predicate>(query::Equals("no_such", 1)),
      std::shared_ptr<const query::Predicate>(
          query::And(query::Equals("region", 1),
                     query::GreaterEq("missing", 7))),
  };
  const char* tables[] = {"orders", "orders", "orders", "ghosts", ""};
  const char* tenants[] = {"a", "a", "a", "b", ""};

  Random rng(0xD1CE);
  for (int round = 0; round < 40; ++round) {
    struct Pending {
      std::future<ServiceResponse> future;
      ServiceRequest request;  // copy for the serial recompute
    };
    std::vector<Pending> pending;
    const int burst = 1 + static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < burst; ++i) {
      ServiceRequest request;
      request.tenant = tenants[rng.Uniform(5)];
      request.priority = static_cast<int>(rng.Uniform(7)) - 3;
      if (rng.Uniform(8) == 0) request.deadline_ns = 1;  // likely expired
      const uint64_t shape = rng.Uniform(10);
      if (shape < 4) {
        request.table = tables[rng.Uniform(5)];
        request.predicate = good_pool[rng.Uniform(good_pool.size())];
      } else if (shape < 6) {
        request.table = tables[rng.Uniform(5)];
        request.predicate = bad_pool[rng.Uniform(bad_pool.size())];
      } else {
        // Direct op; both, one, or neither side may be empty.
        const SetOp ops[] = {SetOp::kIntersect, SetOp::kUnion,
                             SetOp::kDifference, SetOp::kMerge};
        request.op = ops[rng.Uniform(4)];
        if (rng.Uniform(3) != 0) {
          request.a = service::test::MakeSortedSet(rng, 48, 2048);
        }
        if (rng.Uniform(3) != 0) {
          request.b = service::test::MakeSortedSet(rng, 48, 2048);
        }
      }
      Pending p;
      p.request = request;
      p.future = service->Submit(std::move(request));
      pending.push_back(std::move(p));
    }
    service->Drain();
    for (Pending& p : pending) {
      const ServiceResponse response = p.future.get();
      if (!response.status.ok()) continue;  // clean rejection is fine
      // An OK response must be verifiable against a serial recompute.
      if (p.request.predicate != nullptr) {
        EXPECT_EQ(p.request.table, "orders");
        auto expected = reference.Select(*p.request.predicate);
        ASSERT_TRUE(expected.ok()) << expected.status();
        EXPECT_EQ(response.values, *expected)
            << "round " << round << ": "
            << p.request.predicate->ToString();
      } else {
        auto expected =
            reference.Direct(p.request.op, p.request.a, p.request.b);
        ASSERT_TRUE(expected.ok()) << expected.status();
        EXPECT_EQ(response.values, *expected) << "round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace dba
