#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/galloping_baseline.h"
#include "baseline/scalar_baseline.h"
#include "baseline/simd_baseline.h"
#include "common/random.h"
#include "core/workload.h"

namespace dba::baseline {
namespace {

// --- Scalar reference implementations vs. the standard library ---

TEST(ScalarBaselineTest, MatchesStdAlgorithms) {
  auto pair = GenerateSetPair(777, 555, 0.4, 9);
  ASSERT_TRUE(pair.ok());
  std::vector<uint32_t> expected;

  expected.clear();
  std::set_intersection(pair->a.begin(), pair->a.end(), pair->b.begin(),
                        pair->b.end(), std::back_inserter(expected));
  EXPECT_EQ(ScalarIntersect(pair->a, pair->b), expected);

  expected.clear();
  std::set_union(pair->a.begin(), pair->a.end(), pair->b.begin(),
                 pair->b.end(), std::back_inserter(expected));
  EXPECT_EQ(ScalarUnion(pair->a, pair->b), expected);

  expected.clear();
  std::set_difference(pair->a.begin(), pair->a.end(), pair->b.begin(),
                      pair->b.end(), std::back_inserter(expected));
  EXPECT_EQ(ScalarDifference(pair->a, pair->b), expected);
}

TEST(ScalarBaselineTest, EmptyInputs) {
  EXPECT_TRUE(ScalarIntersect({}, {}).empty());
  EXPECT_EQ(ScalarUnion(std::vector<uint32_t>{1}, {}),
            (std::vector<uint32_t>{1}));
  EXPECT_EQ(ScalarDifference(std::vector<uint32_t>{1}, {}),
            (std::vector<uint32_t>{1}));
}

TEST(ScalarBaselineTest, MergeSortMatchesStdSort) {
  for (uint32_t n : {0u, 1u, 2u, 3u, 100u, 1000u}) {
    std::vector<uint32_t> values = GenerateSortInput(n, n + 1);
    std::vector<uint32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(ScalarMergeSort(values), expected) << "n=" << n;
  }
}

// --- SIMD merge-sort (swsort) ---

TEST(SimdSortTest, SizesSweep) {
  for (uint32_t n : {0u, 1u, 3u, 4u, 5u, 15u, 16u, 17u, 31u, 32u, 33u, 63u,
                     64u, 100u, 255u, 256u, 1000u}) {
    std::vector<uint32_t> values = GenerateSortInput(n, 1000 + n);
    std::vector<uint32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(SimdMergeSort(values), expected) << "n=" << n;
  }
}

TEST(SimdSortTest, AdversarialPatterns) {
  std::vector<uint32_t> descending;
  std::vector<uint32_t> equal(97, 5);
  std::vector<uint32_t> organ_pipe;
  for (uint32_t i = 0; i < 97; ++i) descending.push_back(97 - i);
  for (uint32_t i = 0; i < 97; ++i) {
    organ_pipe.push_back(i < 48 ? i : 97 - i);
  }
  for (const auto& values : {descending, equal, organ_pipe}) {
    std::vector<uint32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(SimdMergeSort(values), expected);
  }
}

TEST(SimdSortTest, RandomizedAgainstStdSort) {
  Random rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<uint32_t>(rng.Uniform(500));
    std::vector<uint32_t> values(n);
    for (auto& v : values) v = static_cast<uint32_t>(rng.Uniform(1000));
    std::vector<uint32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(SimdMergeSort(values), expected) << "trial " << trial;
  }
}

// --- SIMD intersection (swset) ---

TEST(SimdIntersectTest, MatchesScalarOnWorkloads) {
  for (double selectivity : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    auto pair = GenerateSetPair(1000, 1000, selectivity, 17);
    ASSERT_TRUE(pair.ok());
    EXPECT_EQ(SimdIntersect(pair->a, pair->b),
              ScalarIntersect(pair->a, pair->b))
        << "selectivity " << selectivity;
  }
}

TEST(SimdIntersectTest, BlockBoundaryPatterns) {
  // Matches exactly at 4-element block boundaries, equal maxima, and
  // tails shorter than a vector.
  const std::vector<uint32_t> a = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<uint32_t> b = {4, 5, 6, 7, 8};
  EXPECT_EQ(SimdIntersect(a, b), ScalarIntersect(a, b));
  const std::vector<uint32_t> c = {4, 8, 12, 16, 20, 24, 28, 32};
  const std::vector<uint32_t> d = {16, 32};
  EXPECT_EQ(SimdIntersect(c, d), ScalarIntersect(c, d));
  EXPECT_EQ(SimdIntersect(d, c), ScalarIntersect(d, c));
}

TEST(SimdIntersectTest, EmptyAndTiny) {
  EXPECT_TRUE(SimdIntersect({}, {}).empty());
  EXPECT_TRUE(
      SimdIntersect(std::vector<uint32_t>{1, 2, 3}, {}).empty());
  EXPECT_EQ(SimdIntersect(std::vector<uint32_t>{5},
                          std::vector<uint32_t>{5}),
            (std::vector<uint32_t>{5}));
}

TEST(SimdIntersectTest, RandomizedAgainstScalar) {
  Random rng(55);
  for (int trial = 0; trial < 300; ++trial) {
    auto make_set = [&rng]() {
      const auto n = rng.Uniform(60);
      std::vector<uint32_t> values;
      uint32_t v = 0;
      for (uint64_t i = 0; i < n; ++i) {
        v += 1 + static_cast<uint32_t>(rng.Uniform(4));
        values.push_back(v);
      }
      return values;
    };
    const auto a = make_set();
    const auto b = make_set();
    ASSERT_EQ(SimdIntersect(a, b), ScalarIntersect(a, b)) << "trial " << trial;
  }
}

// --- Galloping intersection (exponential probe + binary search) ---

TEST(GallopingIntersectTest, EmptyInputs) {
  EXPECT_TRUE(GallopingIntersect({}, {}).empty());
  EXPECT_TRUE(
      GallopingIntersect(std::vector<uint32_t>{1, 2, 3}, {}).empty());
  EXPECT_TRUE(
      GallopingIntersect({}, std::vector<uint32_t>{1, 2, 3}).empty());
}

TEST(GallopingIntersectTest, DisjointSets) {
  const std::vector<uint32_t> evens = {0, 2, 4, 6, 8, 10};
  const std::vector<uint32_t> odds = {1, 3, 5, 7, 9, 11};
  EXPECT_TRUE(GallopingIntersect(evens, odds).empty());
  const std::vector<uint32_t> low = {1, 2, 3};
  const std::vector<uint32_t> high = {100, 200, 300};
  EXPECT_TRUE(GallopingIntersect(low, high).empty());
  EXPECT_TRUE(GallopingIntersect(high, low).empty());
}

TEST(GallopingIntersectTest, SubsetIsReturnedWhole) {
  std::vector<uint32_t> large;
  for (uint32_t i = 0; i < 4096; ++i) large.push_back(3 * i);
  const std::vector<uint32_t> subset = {0, 3, 300, 3000, 9000, 12000};
  EXPECT_EQ(GallopingIntersect(subset, large), subset);
  EXPECT_EQ(GallopingIntersect(large, subset), subset);
  EXPECT_EQ(GallopingIntersect(large, large), large);
}

TEST(GallopingIntersectTest, MatchesScalarOnSkewedWorkloads) {
  for (uint32_t skew : {1u, 4u, 64u, 1024u}) {
    for (double selectivity : {0.0, 0.3, 1.0}) {
      auto pair = GenerateSetPair(64, 64 * skew, selectivity, 7 + skew);
      ASSERT_TRUE(pair.ok());
      EXPECT_EQ(GallopingIntersect(pair->a, pair->b),
                ScalarIntersect(pair->a, pair->b))
          << "skew " << skew << " selectivity " << selectivity;
      EXPECT_EQ(GallopingIntersect(pair->b, pair->a),
                ScalarIntersect(pair->b, pair->a))
          << "swapped, skew " << skew;
    }
  }
}

TEST(GallopingIntersectTest, RandomizedAgainstScalar) {
  Random rng(91);
  for (int trial = 0; trial < 300; ++trial) {
    auto make_set = [&rng](uint64_t max_len) {
      const auto n = rng.Uniform(max_len);
      std::vector<uint32_t> values;
      uint32_t v = 0;
      for (uint64_t i = 0; i < n; ++i) {
        v += 1 + static_cast<uint32_t>(rng.Uniform(6));
        values.push_back(v);  // strictly increasing: duplicate-free
      }
      return values;
    };
    const auto a = make_set(40);
    const auto b = make_set(400);
    ASSERT_EQ(GallopingIntersect(a, b), ScalarIntersect(a, b))
        << "trial " << trial;
  }
}

TEST(SimdBaselineTest, ReportsVectorUnitUse) {
  // The library translation unit decides the code path; the answer must
  // be stable across calls. (On x86-64 builds the vector path is on.)
  const bool first = SimdBaselineUsesVectorUnit();
  EXPECT_EQ(first, SimdBaselineUsesVectorUnit());
#if defined(__x86_64__)
  EXPECT_TRUE(first);
#endif
}

}  // namespace
}  // namespace dba::baseline
