#include <gtest/gtest.h>

#include "core/processor.h"
#include "core/workload.h"
#include "dbkern/scalar_kernels.h"
#include "isa/assembler.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "toolchain/profiler.h"

namespace dba::toolchain {
namespace {

using isa::Assembler;
using isa::Reg;

TEST(ProfilerTest, FindsLoopHotspot) {
  mem::Memory memory = *mem::Memory::Create(
      {.name = "m", .base = 0x1000, .size = 256, .access_latency = 1});
  sim::Cpu cpu{sim::CoreConfig{}};
  ASSERT_TRUE(cpu.AttachMemory(&memory).ok());

  Assembler masm;
  isa::Label loop;
  masm.Movi(Reg::a1, 0);
  masm.Movi(Reg::a2, 100);
  masm.Bind(&loop, "hot_loop");
  masm.Addi(Reg::a1, Reg::a1, 1);
  masm.Blt(Reg::a1, Reg::a2, &loop);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(cpu.LoadProgram(*program).ok());
  auto stats = cpu.Run({.profile = true});
  ASSERT_TRUE(stats.ok());

  const ProfileReport report = BuildProfile(*program, *stats);
  ASSERT_GE(report.hotspots.size(), 2u);
  EXPECT_EQ(report.hotspots[0].count, 100u);
  EXPECT_EQ(report.hotspots[0].label, "hot_loop");
  EXPECT_GT(report.hotspots[0].percent, 40.0);
  EXPECT_EQ(report.cycles, stats->cycles);
  EXPECT_GT(report.cycles_per_instruction, 0.9);

  // The dynamic mix is dominated by the loop body.
  ASSERT_FALSE(report.instruction_mix.empty());
  EXPECT_TRUE(report.instruction_mix[0].first == "addi" ||
              report.instruction_mix[0].first == "blt");
  EXPECT_EQ(report.instruction_mix[0].second, 100u);

  const std::string text = report.ToString();
  EXPECT_NE(text.find("hot_loop"), std::string::npos);
  EXPECT_NE(text.find("instruction mix"), std::string::npos);
}

TEST(ProfilerTest, TopNLimitsEntries) {
  mem::Memory memory = *mem::Memory::Create(
      {.name = "m", .base = 0x1000, .size = 256, .access_latency = 1});
  sim::Cpu cpu{sim::CoreConfig{}};
  ASSERT_TRUE(cpu.AttachMemory(&memory).ok());
  Assembler masm;
  for (int i = 0; i < 20; ++i) masm.Nop();
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(cpu.LoadProgram(*program).ok());
  auto stats = cpu.Run({.profile = true});
  ASSERT_TRUE(stats.ok());
  const ProfileReport report = BuildProfile(*program, *stats, nullptr, 5);
  EXPECT_EQ(report.hotspots.size(), 5u);
}

TEST(ProfilerTest, ResolvesTieNamesThroughCpu) {
  // Profile the scalar intersection on a full processor and check that
  // the report carries the paper's development-loop signal: the core
  // loop dominates.
  auto processor = Processor::Create(ProcessorKind::kDba1Lsu);
  ASSERT_TRUE(processor.ok());
  auto pair = GenerateSetPair(400, 400, 0.5, 21);
  ASSERT_TRUE(pair.ok());

  auto program = dbkern::BuildScalarSetOp(eis::SopMode::kIntersect);
  ASSERT_TRUE(program.ok());

  // Drive manually to enable profiling.
  sim::Cpu& cpu = (*processor)->cpu();
  auto run =
      (*processor)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok());
  // Re-run with profiling through the same program for the report.
  ASSERT_TRUE(cpu.LoadProgram(*program).ok());
  cpu.ResetArchState();
  cpu.set_reg(isa::Reg::a0, 0x10000);
  cpu.set_reg(isa::Reg::a2, 0);
  cpu.set_reg(isa::Reg::a1, 0x10000);
  cpu.set_reg(isa::Reg::a3, 0);
  cpu.set_reg(isa::Reg::a4, 0x200000);
  auto stats = cpu.Run({.profile = true});
  ASSERT_TRUE(stats.ok());
  const ProfileReport report =
      BuildProfile(*program, *stats, cpu.MakeExtNameResolver());
  EXPECT_FALSE(report.hotspots.empty());
}

}  // namespace
}  // namespace dba::toolchain
