// Tests of the bit-unpacking extension (compressed column scans) and
// its kernels: pack/unpack oracles, per-width correctness on both code
// paths, and edge counts around the 4-value beat granularity.

#include <gtest/gtest.h>

#include "common/random.h"
#include "dbkern/compression_kernels.h"
#include "isa/assembler.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/packscan_extension.h"

namespace dba {
namespace {

using isa::Reg;
using tie::PackScanExtension;

constexpr uint64_t kSrcBase = 0x1000;
constexpr uint64_t kDstBase = 0x20000;

class PackScanTest : public ::testing::Test {
 protected:
  PackScanTest()
      : memory_(*mem::Memory::Create({.name = "m",
                                      .base = kSrcBase,
                                      .size = 256 << 10,
                                      .access_latency = 1})),
        cpu_(MakeConfig()) {
    EXPECT_TRUE(cpu_.AttachMemory(&memory_).ok());
    EXPECT_TRUE(ext_.Attach(&cpu_).ok());
  }

  static sim::CoreConfig MakeConfig() {
    sim::CoreConfig config;
    config.num_lsus = 2;
    config.data_bus_bits = 128;
    config.instruction_bus_bits = 64;
    return config;
  }

  /// Unpacks `values` (packed at `bits`) through a kernel; returns the
  /// produced values and cycles.
  Result<std::pair<std::vector<uint32_t>, uint64_t>> RunUnpack(
      const std::vector<uint32_t>& values, int bits, bool use_extension) {
    std::vector<uint32_t> packed = PackScanExtension::Pack(values, bits);
    packed.resize((packed.size() + 7) & ~size_t{3}, 0);  // beat padding
    DBA_RETURN_IF_ERROR(memory_.WriteBlock(kSrcBase, packed));
    DBA_ASSIGN_OR_RETURN(isa::Program program,
                         dbkern::BuildUnpackKernel(use_extension, bits));
    program_ = std::move(program);
    DBA_RETURN_IF_ERROR(cpu_.LoadProgram(program_));
    cpu_.ResetArchState();
    ext_.ResetState();
    cpu_.set_reg(isa::abi::kPtrA, kSrcBase);
    cpu_.set_reg(isa::abi::kLenA, static_cast<uint32_t>(values.size()));
    cpu_.set_reg(isa::abi::kPtrC, kDstBase);
    DBA_ASSIGN_OR_RETURN(sim::ExecStats stats, cpu_.Run());
    if (cpu_.reg(isa::abi::kLenC) != values.size()) {
      return Status::Internal("produced count mismatch");
    }
    DBA_ASSIGN_OR_RETURN(std::vector<uint32_t> out,
                         memory_.ReadBlock(kDstBase, values.size()));
    return std::make_pair(std::move(out), stats.cycles);
  }

  mem::Memory memory_;
  sim::Cpu cpu_;
  PackScanExtension ext_;
  isa::Program program_;
};

TEST_F(PackScanTest, HostPackUnpackRoundTrip) {
  Random rng(5);
  for (int bits = 1; bits <= 32; ++bits) {
    std::vector<uint32_t> values(97);
    const uint32_t mask =
        bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1);
    for (auto& v : values) v = rng.Next32() & mask;
    const auto packed = PackScanExtension::Pack(values, bits);
    EXPECT_EQ(PackScanExtension::Unpack(packed, bits, values.size()), values)
        << "bits=" << bits;
    // Packed size is exactly ceil(n*k/32) words.
    EXPECT_EQ(packed.size(), (values.size() * static_cast<size_t>(bits) + 31) / 32);
  }
}

TEST_F(PackScanTest, AllWidthsBothPaths) {
  Random rng(11);
  for (int bits : {1, 3, 7, 8, 9, 13, 16, 17, 25, 31, 32}) {
    std::vector<uint32_t> values(203);
    const uint32_t mask =
        bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1);
    for (auto& v : values) v = rng.Next32() & mask;
    for (bool use_extension : {true, false}) {
      auto run = RunUnpack(values, bits, use_extension);
      ASSERT_TRUE(run.ok()) << "bits=" << bits << " ext=" << use_extension
                            << ": " << run.status();
      ASSERT_EQ(run->first, values)
          << "bits=" << bits << " ext=" << use_extension;
    }
  }
}

TEST_F(PackScanTest, EdgeCounts) {
  for (uint32_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u}) {
    std::vector<uint32_t> values(n);
    for (uint32_t i = 0; i < n; ++i) values[i] = i + 1;
    for (bool use_extension : {true, false}) {
      auto run = RunUnpack(values, 13, use_extension);
      ASSERT_TRUE(run.ok()) << "n=" << n << ": " << run.status();
      EXPECT_EQ(run->first, values) << "n=" << n << " ext=" << use_extension;
    }
  }
}

TEST_F(PackScanTest, MergedInstructionIsMuchFaster) {
  Random rng(21);
  std::vector<uint32_t> values(2000);
  for (auto& v : values) v = rng.Next32() & 0x1FFF;
  auto hw = RunUnpack(values, 13, true);
  auto sw = RunUnpack(values, 13, false);
  ASSERT_TRUE(hw.ok());
  ASSERT_TRUE(sw.ok());
  EXPECT_LT(hw->second * 8, sw->second);
}

TEST_F(PackScanTest, InitValidation) {
  isa::Assembler masm;
  masm.Tie(PackScanExtension::kInit, 0);  // width 0 invalid
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  program_ = *std::move(program);
  ASSERT_TRUE(cpu_.LoadProgram(program_).ok());
  cpu_.ResetArchState();
  EXPECT_EQ(cpu_.Run().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PackScanTest, UnpackBeforeInitFails) {
  isa::Assembler masm;
  masm.Tie(PackScanExtension::kUnpackBeat, 6);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  program_ = *std::move(program);
  ASSERT_TRUE(cpu_.LoadProgram(program_).ok());
  cpu_.ResetArchState();
  ext_.ResetState();
  EXPECT_EQ(cpu_.Run().status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dba
