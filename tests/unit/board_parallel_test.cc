// Host-parallel board simulation: the number of host threads simulating
// the board's cores must never change what the board computes. These
// tests pin the bit-identity contract (result, per-core cycles,
// makespan) across host_threads settings, for all parallel operations,
// including partitions that overflow the local store and stream in
// chunks, and the degenerate empty-side ranges.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baseline/scalar_baseline.h"
#include "common/thread_pool.h"
#include "core/processor.h"
#include "core/program_cache.h"
#include "core/workload.h"
#include "system/board.h"

namespace dba::system {
namespace {

std::unique_ptr<Board> MakeBoard(int num_cores, int host_threads) {
  BoardConfig config;
  config.num_cores = num_cores;
  config.host_threads = host_threads;
  auto board = Board::Create(config);
  EXPECT_TRUE(board.ok()) << board.status();
  return *std::move(board);
}

void ExpectIdenticalRuns(const ParallelRun& reference,
                         const ParallelRun& run, const char* what) {
  EXPECT_EQ(run.result, reference.result) << what;
  EXPECT_EQ(run.per_core_cycles, reference.per_core_cycles) << what;
  EXPECT_EQ(run.makespan_cycles, reference.makespan_cycles) << what;
  EXPECT_EQ(run.total_core_cycles, reference.total_core_cycles) << what;
  EXPECT_EQ(run.noc_bound, reference.noc_bound) << what;
  EXPECT_DOUBLE_EQ(run.energy_uj, reference.energy_uj) << what;
}

class BoardDeterminismTest : public ::testing::TestWithParam<SetOp> {};

TEST_P(BoardDeterminismTest, SetOpBitIdenticalAcrossHostThreads) {
  // 80000 elements over 8 cores: ~10000 per partition, beyond the
  // ~8188-element local-store capacity, so every core takes the
  // streamed chunked path.
  auto pair = GenerateSetPair(80000, 70000, 0.4, 7);
  ASSERT_TRUE(pair.ok());

  auto serial = MakeBoard(8, 1);
  auto reference = serial->RunSetOperation(GetParam(), pair->a, pair->b);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->host_threads_used, 1);

  for (int host_threads : {2, 8}) {
    auto board = MakeBoard(8, host_threads);
    EXPECT_EQ(board->host_threads(), host_threads);
    auto run = board->RunSetOperation(GetParam(), pair->a, pair->b);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->host_threads_used, host_threads);
    ExpectIdenticalRuns(*reference, *run, "chunked set operation");
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, BoardDeterminismTest,
                         ::testing::Values(SetOp::kIntersect, SetOp::kUnion,
                                           SetOp::kDifference));

TEST(BoardParallelTest, SortBitIdenticalAcrossHostThreads) {
  // ~10000 values per bucket exceeds the ~8184-value sort capacity, so
  // cores external-sort their buckets in chunks.
  const auto values = GenerateSortInput(80000, 11);

  auto serial = MakeBoard(8, 1);
  auto reference = serial->RunSort(values);
  ASSERT_TRUE(reference.ok()) << reference.status();

  std::vector<uint32_t> expected = values;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(reference->result, expected);

  for (int host_threads : {2, 8}) {
    auto board = MakeBoard(8, host_threads);
    auto run = board->RunSort(values);
    ASSERT_TRUE(run.ok()) << run.status();
    ExpectIdenticalRuns(*reference, *run, "chunked sample-sort");
  }
}

TEST(BoardParallelTest, SmallInputsBitIdenticalAcrossHostThreads) {
  // In-store path: partitions fit the local memories.
  auto pair = GenerateSetPair(6000, 5000, 0.5, 3);
  ASSERT_TRUE(pair.ok());
  auto serial = MakeBoard(4, 1);
  for (const SetOp op :
       {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference}) {
    auto reference = serial->RunSetOperation(op, pair->a, pair->b);
    ASSERT_TRUE(reference.ok()) << reference.status();
    auto board = MakeBoard(4, 4);
    auto run = board->RunSetOperation(op, pair->a, pair->b);
    ASSERT_TRUE(run.ok()) << run.status();
    ExpectIdenticalRuns(*reference, *run, "in-store set operation");
  }
}

TEST(BoardParallelTest, DegenerateRangesMatchReferenceAndAreDeterministic) {
  // All of B falls below every value of A: partitioning by A's range
  // leaves B-only and A-only ranges, so cores hit the degenerate
  // empty-side path.
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
  for (uint32_t i = 0; i < 20000; ++i) a.push_back(1000000 + 3 * i);
  for (uint32_t i = 0; i < 15000; ++i) b.push_back(2 * i);
  for (const SetOp op :
       {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference}) {
    auto serial = MakeBoard(8, 1);
    auto reference = serial->RunSetOperation(op, a, b);
    ASSERT_TRUE(reference.ok()) << reference.status();
    std::vector<uint32_t> expected;
    switch (op) {
      case SetOp::kIntersect:
        expected = baseline::ScalarIntersect(a, b);
        break;
      case SetOp::kUnion:
        expected = baseline::ScalarUnion(a, b);
        break;
      case SetOp::kDifference:
        expected = baseline::ScalarDifference(a, b);
        break;
      default:
        break;
    }
    EXPECT_EQ(reference->result, expected);
    auto board = MakeBoard(8, 8);
    auto run = board->RunSetOperation(op, a, b);
    ASSERT_TRUE(run.ok()) << run.status();
    ExpectIdenticalRuns(*reference, *run, "degenerate ranges");
  }
}

TEST(BoardParallelTest, HostTelemetryPopulated) {
  auto pair = GenerateSetPair(5000, 5000, 0.5, 5);
  ASSERT_TRUE(pair.ok());
  auto board = MakeBoard(2, 2);
  auto run = board->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run->host_wall_seconds, 0.0);
  EXPECT_EQ(run->host_threads_used, 2);
}

TEST(BoardParallelTest, HostThreadsClampedToCores) {
  auto board = MakeBoard(2, 16);
  EXPECT_EQ(board->host_threads(), 2);
}

TEST(ProgramCacheTest, SharedCacheMatchesPerProcessorPrograms) {
  ProcessorOptions options;
  auto cache = ProgramCache::Build(options);
  ASSERT_TRUE(cache.ok()) << cache.status();
  auto shared = Processor::Create(ProcessorKind::kDba2LsuEis, options,
                                  *cache);
  ASSERT_TRUE(shared.ok()) << shared.status();
  auto own = Processor::Create(ProcessorKind::kDba2LsuEis, options);
  ASSERT_TRUE(own.ok()) << own.status();

  auto pair = GenerateSetPair(4000, 4000, 0.5, 9);
  ASSERT_TRUE(pair.ok());
  for (const SetOp op :
       {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference}) {
    auto a = (*shared)->RunSetOperation(op, pair->a, pair->b);
    auto c = (*own)->RunSetOperation(op, pair->a, pair->b);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(c.ok()) << c.status();
    EXPECT_EQ(a->result, c->result);
    EXPECT_EQ(a->metrics.cycles, c->metrics.cycles);
  }
  const auto values = GenerateSortInput(5000, 13);
  auto a = (*shared)->RunSort(values);
  auto c = (*own)->RunSort(values);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(a->sorted, c->sorted);
  EXPECT_EQ(a->metrics.cycles, c->metrics.cycles);
}

TEST(ProgramCacheTest, RejectsOptionsMismatch) {
  ProcessorOptions cache_options;
  cache_options.unroll = 8;
  auto cache = ProgramCache::Build(cache_options);
  ASSERT_TRUE(cache.ok());
  ProcessorOptions other;
  other.unroll = 16;
  auto processor =
      Processor::Create(ProcessorKind::kDba2LsuEis, other, *cache);
  EXPECT_EQ(processor.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dba::system
