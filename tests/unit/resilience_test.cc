// Unit tests for the service resilience layer (service/resilience.h)
// and its integration seams: token-bucket arithmetic, deadline-aware
// retry budgets, circuit-breaker transitions under explicit timestamps,
// host-fallback bit-identity against the serial reference, the board's
// recovery deadline budget, typed rate-limit sheds, breaker-open
// shedding with fallback disabled, and ServiceConfig::Validate
// rejections for every new knob.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "common/random.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "service/query_service.h"
#include "service/resilience.h"
#include "service/service_clock.h"
#include "shared/service_test_util.h"
#include "system/board.h"

namespace dba::service {
namespace {

// --- TokenBucket -----------------------------------------------------------

TEST(TokenBucket, DefaultIsUnlimited) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket bucket(0.0, 5.0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.TryAcquire(123));
}

TEST(TokenBucket, BurstThenDry) {
  // 1000 req/s -> one token per ms; burst 3 -> three immediate admits.
  TokenBucket bucket(1000.0, 3.0);
  EXPECT_EQ(bucket.emission_interval_ns(), 1'000'000u);
  EXPECT_EQ(bucket.burst_tolerance_ns(), 2'000'000u);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));
  // One emission interval later exactly one token is back.
  EXPECT_TRUE(bucket.TryAcquire(1'000'000));
  EXPECT_FALSE(bucket.TryAcquire(1'000'000));
}

TEST(TokenBucket, SustainedRateAdmitsEveryInterval) {
  TokenBucket bucket(1000.0, 1.0);
  uint64_t now = 0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(now)) << "tick " << i;
    EXPECT_FALSE(bucket.TryAcquire(now)) << "tick " << i;
    now += 1'000'000;
  }
}

TEST(TokenBucket, IdleCreditDoesNotExceedBurst) {
  TokenBucket bucket(1000.0, 2.0);
  // A long idle period must not bank more than `burst` tokens.
  const uint64_t later = 1'000'000'000;
  EXPECT_TRUE(bucket.TryAcquire(later));
  EXPECT_TRUE(bucket.TryAcquire(later));
  EXPECT_FALSE(bucket.TryAcquire(later));
}

// --- RetryBudget -----------------------------------------------------------

TEST(RetryBudget, ExponentialBackoffWithBoundedJitter) {
  RetryConfig config;
  config.max_retries = 3;
  config.backoff_base_ns = 1000;
  config.backoff_cap_ns = 1'000'000;
  RetryBudget budget(config, /*deadline_ns=*/0, /*key=*/7);
  uint64_t expected_base = 1000;
  for (int k = 0; k < 3; ++k) {
    const std::optional<uint64_t> delay = budget.NextDelayNs(0);
    ASSERT_TRUE(delay.has_value()) << "retry " << k;
    EXPECT_GE(*delay, expected_base);
    EXPECT_LE(*delay, expected_base + expected_base / 2);
    expected_base <<= 1;
  }
  EXPECT_FALSE(budget.NextDelayNs(0).has_value()) << "budget exhausted";
  EXPECT_EQ(budget.retries_used(), 3);
}

TEST(RetryBudget, DeterministicPerKey) {
  RetryConfig config;
  config.max_retries = 4;
  RetryBudget a(config, 0, 42);
  RetryBudget b(config, 0, 42);
  RetryBudget c(config, 0, 43);
  bool any_difference = false;
  for (int k = 0; k < 4; ++k) {
    const auto da = a.NextDelayNs(0);
    const auto db = b.NextDelayNs(0);
    const auto dc = c.NextDelayNs(0);
    ASSERT_TRUE(da && db && dc);
    EXPECT_EQ(*da, *db) << "same key must replay identically";
    any_difference = any_difference || *da != *dc;
  }
  EXPECT_TRUE(any_difference) << "different keys should decorrelate";
}

TEST(RetryBudget, RefusesRetryPastDeadline) {
  RetryConfig config;
  config.max_retries = 5;
  config.backoff_base_ns = 1000;
  // Deadline 500 ns out: even the first (>= 1000 ns) backoff overshoots.
  RetryBudget budget(config, /*deadline_ns=*/10'500, /*key=*/1);
  EXPECT_FALSE(budget.NextDelayNs(10'000).has_value());
  EXPECT_EQ(budget.retries_used(), 0);
  // With room to spare the same budget grants the retry.
  RetryBudget roomy(config, /*deadline_ns=*/20'000, /*key=*/1);
  EXPECT_TRUE(roomy.NextDelayNs(10'000).has_value());
}

TEST(RetryBudget, CapBoundsDelay) {
  RetryConfig config;
  config.max_retries = 16;
  config.backoff_base_ns = 1'000'000;
  config.backoff_cap_ns = 4'000'000;
  RetryBudget budget(config, 0, 9);
  for (int k = 0; k < 16; ++k) {
    const auto delay = budget.NextDelayNs(0);
    ASSERT_TRUE(delay.has_value());
    EXPECT_LE(*delay, config.backoff_cap_ns);
  }
}

// --- CircuitBreaker --------------------------------------------------------

BreakerConfig TestBreaker() {
  BreakerConfig config;
  config.failure_threshold = 2;
  config.open_duration_ns = 1000;
  config.half_open_probes = 2;
  config.probe_successes_to_close = 2;
  return config;
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker breaker(TestBreaker());
  EXPECT_EQ(breaker.StateAt(0), BreakerState::kClosed);
  breaker.RecordFailure(10);
  EXPECT_EQ(breaker.StateAt(10), BreakerState::kClosed);
  // A success resets the streak.
  breaker.RecordSuccess(20);
  breaker.RecordFailure(30);
  EXPECT_EQ(breaker.StateAt(30), BreakerState::kClosed);
  breaker.RecordFailure(40);
  EXPECT_EQ(breaker.StateAt(40), BreakerState::kOpen);
  EXPECT_EQ(breaker.transitions(), 1u);
}

TEST(CircuitBreaker, CoolDownThenProbeLadderCloses) {
  CircuitBreaker breaker(TestBreaker());
  breaker.RecordFailure(0);
  breaker.RecordFailure(0);
  ASSERT_EQ(breaker.StateAt(0), BreakerState::kOpen);
  EXPECT_EQ(breaker.StateAt(999), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowProbe(999));
  // Cool-down elapsed: half-open grants exactly half_open_probes slots.
  EXPECT_EQ(breaker.StateAt(1000), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.AllowProbe(1000));
  EXPECT_TRUE(breaker.AllowProbe(1001));
  EXPECT_FALSE(breaker.AllowProbe(1002));
  // probe_successes_to_close = 2: first success keeps it half-open.
  breaker.RecordSuccess(1003);
  EXPECT_EQ(breaker.StateAt(1003), BreakerState::kHalfOpen);
  breaker.RecordSuccess(1004);
  EXPECT_EQ(breaker.StateAt(1004), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  // closed->open, open->half-open, half-open->closed.
  EXPECT_EQ(breaker.transitions(), 3u);
}

TEST(CircuitBreaker, FailedProbeReArmsCoolDown) {
  CircuitBreaker breaker(TestBreaker());
  breaker.RecordFailure(0);
  breaker.RecordFailure(0);
  ASSERT_EQ(breaker.StateAt(1000), BreakerState::kHalfOpen);
  ASSERT_TRUE(breaker.AllowProbe(1000));
  breaker.RecordFailure(1100);
  EXPECT_EQ(breaker.StateAt(1100), BreakerState::kOpen);
  // The cool-down restarts from the failed probe, not the first trip.
  EXPECT_EQ(breaker.StateAt(2099), BreakerState::kOpen);
  EXPECT_EQ(breaker.StateAt(2100), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, QuarantineFractionTripsImmediately) {
  BreakerConfig config = TestBreaker();
  config.quarantine_fraction = 0.5;
  CircuitBreaker breaker(config);
  system::RecoveryTelemetry telemetry;
  telemetry.quarantined_cores = {0, 1};
  // A *successful* but degraded run on 2/4 quarantined cores trips.
  breaker.OnBoardResult(true, &telemetry, /*num_cores=*/4, /*now_ns=*/5);
  EXPECT_EQ(breaker.StateAt(5), BreakerState::kOpen);
}

TEST(CircuitBreaker, RetryAlarmCountsAsFailureSignal) {
  BreakerConfig config = TestBreaker();
  config.retry_alarm = 8;
  CircuitBreaker breaker(config);
  system::RecoveryTelemetry telemetry;
  telemetry.retries = 8;
  breaker.OnBoardResult(true, &telemetry, 4, 0);
  EXPECT_EQ(breaker.StateAt(0), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 1);
  breaker.OnBoardResult(true, &telemetry, 4, 1);
  EXPECT_EQ(breaker.StateAt(1), BreakerState::kOpen);
}

TEST(CircuitBreaker, DisabledNeverTrips) {
  BreakerConfig config = TestBreaker();
  config.enabled = false;
  CircuitBreaker breaker(config);
  for (uint64_t i = 0; i < 10; ++i) breaker.RecordFailure(i);
  EXPECT_EQ(breaker.StateAt(100), BreakerState::kClosed);
  EXPECT_EQ(breaker.transitions(), 0u);
}

// --- Host fallback ---------------------------------------------------------

TEST(HostFallback, BitIdenticalToSerialReference) {
  test::SerialReference reference("orders", 64, 7);
  Random rng(2026);
  const SetOp ops[] = {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference,
                       SetOp::kMerge};
  for (int trial = 0; trial < 200; ++trial) {
    const SetOp op = ops[trial % 4];
    const auto a = test::MakeSortedSet(rng, 96, 8192);
    const auto b = test::MakeSortedSet(rng, 96, 8192);
    auto expected = reference.Direct(op, a, b);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto fallback = RunHostFallbackOp(op, a, b);
    ASSERT_TRUE(fallback.ok()) << fallback.status();
    EXPECT_EQ(*fallback, *expected) << "trial " << trial;
  }
}

TEST(HostFallback, DegenerateEmptyOperandsMatchBoardSemantics) {
  const std::vector<uint32_t> some = {3, 7, 9};
  const std::vector<uint32_t> none;
  EXPECT_EQ(*RunHostFallbackOp(SetOp::kIntersect, some, none),
            std::vector<uint32_t>{});
  EXPECT_EQ(*RunHostFallbackOp(SetOp::kUnion, none, some), some);
  EXPECT_EQ(*RunHostFallbackOp(SetOp::kMerge, some, none), some);
  EXPECT_EQ(*RunHostFallbackOp(SetOp::kDifference, some, none), some);
  EXPECT_EQ(*RunHostFallbackOp(SetOp::kDifference, none, some),
            std::vector<uint32_t>{});
}

// --- Board recovery deadline budget ----------------------------------------

std::unique_ptr<system::Board> MakeBoard(const fault::FaultPlan& plan) {
  system::BoardConfig config;
  config.num_cores = 4;
  config.host_threads = 2;
  config.fault_plan = plan;
  auto board = system::Board::Create(config);
  EXPECT_TRUE(board.ok()) << board.status();
  return *std::move(board);
}

system::Board::BatchItem Item(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  system::Board::BatchItem item;
  item.op = SetOp::kIntersect;
  item.a = a;
  item.b = b;
  return item;
}

TEST(BoardDeadlineBudget, ExhaustedBudgetFailsTyped) {
  // Core 0 is permanently hung: the batch item pinned to it fails every
  // round. With a tiny cycle budget the board must stop the recovery
  // ladder early and return kDeadlineExceeded -- the regression this
  // guards: it used to burn the full retry ladder regardless of the
  // caller's deadline.
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.broken_cores = {0, 1, 2, 3};
  plan.hang_watchdog_cycles = 2000;
  auto board = MakeBoard(plan);
  const std::vector<uint32_t> a = {1, 5, 9, 12};
  const std::vector<uint32_t> b = {5, 9, 30};
  const std::vector<system::Board::BatchItem> items = {Item(a, b)};
  system::Board::BatchOptions options;
  options.deadline_cycles = 1;
  auto run = board->RunSetOperationBatch(items, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
      << run.status();
}

TEST(BoardDeadlineBudget, FaultFreeFirstRoundIgnoresBudget) {
  // The budget only cuts *recovery rounds* short: a clean first round
  // completes even under an absurdly small budget.
  auto board = MakeBoard(fault::FaultPlan{});
  const std::vector<uint32_t> a = {1, 5, 9, 12};
  const std::vector<uint32_t> b = {5, 9, 30};
  const std::vector<system::Board::BatchItem> items = {Item(a, b)};
  system::Board::BatchOptions options;
  options.deadline_cycles = 1;
  auto run = board->RunSetOperationBatch(items, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->results[0], (std::vector<uint32_t>{5, 9}));
}

TEST(BoardDeadlineBudget, UnboundedMatchesDefault) {
  auto board = MakeBoard(fault::FaultPlan{});
  const std::vector<uint32_t> a = {2, 4, 6};
  const std::vector<uint32_t> b = {4, 6, 8};
  const std::vector<system::Board::BatchItem> items = {Item(a, b)};
  auto bounded = board->RunSetOperationBatch(items,
                                             system::Board::BatchOptions{});
  auto defaulted = board->RunSetOperationBatch(items);
  ASSERT_TRUE(bounded.ok());
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(bounded->results[0], defaulted->results[0]);
  EXPECT_EQ(bounded->run.makespan_cycles, defaulted->run.makespan_cycles);
}

// --- Service integration: rate limits and breaker sheds --------------------

TEST(ServiceResilience, RateLimitShedsTyped) {
  system::BoardConfig board_config;
  board_config.num_cores = 2;
  board_config.host_threads = 1;
  auto board = system::Board::Create(board_config);
  ASSERT_TRUE(board.ok());
  VirtualClock clock;
  ServiceConfig config;
  config.board = board->get();
  config.clock = &clock;
  TenantPolicy policy;
  policy.rate_per_sec = 1000;  // one token per virtual ms
  policy.burst = 2;
  config.tenant_policies["metered"] = policy;
  auto service_or = QueryService::Create(config);
  ASSERT_TRUE(service_or.ok()) << service_or.status();
  auto service = *std::move(service_or);

  const auto submit = [&](const std::string& tenant) {
    ServiceRequest request;
    request.tenant = tenant;
    request.op = SetOp::kIntersect;
    request.a = {1, 2, 3};
    request.b = {2, 3, 4};
    return service->Submit(std::move(request));
  };

  // Burst of 2 admits; the third sheds kRateLimited without queueing.
  auto f1 = submit("metered");
  auto f2 = submit("metered");
  auto f3 = submit("metered");
  // An unmetered tenant is untouched by the bucket.
  auto f4 = submit("other");
  EXPECT_EQ(f3.get().status.code(), StatusCode::kRateLimited);
  service->Drain();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  EXPECT_TRUE(f4.get().status.ok());
  EXPECT_EQ(service->counters().rate_limited, 1u);
  // A refill interval later the tenant is admitted again.
  clock.AdvanceBy(1'000'000);
  auto f5 = submit("metered");
  service->Drain();
  EXPECT_TRUE(f5.get().status.ok());
}

TEST(ServiceResilience, BreakerOpenWithoutFallbackShedsTyped) {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.broken_cores = {0, 1};
  plan.hang_watchdog_cycles = 2000;
  system::BoardConfig board_config;
  board_config.num_cores = 2;
  board_config.host_threads = 1;
  board_config.fault_plan = plan;
  auto board = system::Board::Create(board_config);
  ASSERT_TRUE(board.ok());
  VirtualClock clock;
  ServiceConfig config;
  config.board = board->get();
  config.clock = &clock;
  config.breaker.failure_threshold = 1;
  config.host_fallback = false;
  auto service_or = QueryService::Create(config);
  ASSERT_TRUE(service_or.ok()) << service_or.status();
  auto service = *std::move(service_or);

  const auto submit_and_wait = [&] {
    ServiceRequest request;
    request.tenant = "t";
    request.op = SetOp::kUnion;
    request.a = {1, 3};
    request.b = {2, 4};
    auto future = service->Submit(std::move(request));
    service->Drain();
    return future.get();
  };

  // First dispatch fails on the dead board and trips the breaker.
  const ServiceResponse first = submit_and_wait();
  EXPECT_FALSE(first.status.ok());
  EXPECT_EQ(service->breaker_state(), BreakerState::kOpen);
  // With fallback disabled the next request is a typed breaker shed.
  const ServiceResponse second = submit_and_wait();
  EXPECT_EQ(second.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(second.degraded);
  EXPECT_GE(service->counters().breaker_sheds, 1u);
}

TEST(ServiceResilience, SloClassStampsDefaultDeadline) {
  system::BoardConfig board_config;
  board_config.num_cores = 2;
  board_config.host_threads = 1;
  auto board = system::Board::Create(board_config);
  ASSERT_TRUE(board.ok());
  VirtualClock clock;
  ServiceConfig config;
  config.board = board->get();
  config.clock = &clock;
  TenantPolicy interactive;
  interactive.slo = SloClass::kInteractive;
  config.tenant_policies["ui"] = interactive;
  auto service_or = QueryService::Create(config);
  ASSERT_TRUE(service_or.ok()) << service_or.status();
  auto service = *std::move(service_or);

  service->PauseDispatch();
  ServiceRequest request;
  request.tenant = "ui";
  request.op = SetOp::kIntersect;
  request.a = {1, 2};
  request.b = {2, 3};
  auto future = service->Submit(std::move(request));
  // Step the clock past the interactive SLO's 5 ms default deadline
  // while the request is still queued: it must shed, typed.
  clock.AdvanceBy(SloDefaultDeadlineNs(SloClass::kInteractive) + 1);
  service->ResumeDispatch();
  service->Drain();
  EXPECT_EQ(future.get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service->counters().shed, 1u);
}

// --- Validate() rejections -------------------------------------------------

TEST(ResilienceValidate, RejectsBadKnobs) {
  system::BoardConfig board_config;
  board_config.num_cores = 2;
  auto board = system::Board::Create(board_config);
  ASSERT_TRUE(board.ok());

  ServiceConfig base;
  base.board = board->get();
  ASSERT_TRUE(base.Validate().ok());

  {
    ServiceConfig config = base;
    TenantPolicy policy;
    policy.rate_per_sec = -1;
    config.tenant_policies["t"] = policy;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServiceConfig config = base;
    TenantPolicy policy;
    policy.rate_per_sec = 10;
    policy.burst = 0.5;
    config.tenant_policies["t"] = policy;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServiceConfig config = base;
    config.breaker.failure_threshold = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServiceConfig config = base;
    config.breaker.quarantine_fraction = 1.5;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServiceConfig config = base;
    config.breaker.probe_successes_to_close = 99;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServiceConfig config = base;
    config.retry.max_retries = 17;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServiceConfig config = base;
    config.retry.backoff_cap_ns = 1;
    config.retry.backoff_base_ns = 2;
    EXPECT_FALSE(config.Validate().ok());
  }
}

// --- ChaosSchedule ---------------------------------------------------------

TEST(ChaosSchedule, DeterministicAndValidated) {
  for (size_t p = 0; p < fault::kNumChaosProfiles; ++p) {
    const auto profile = static_cast<fault::ChaosProfile>(p);
    auto a = fault::ChaosSchedule::Make(profile, 77);
    auto b = fault::ChaosSchedule::Make(profile, 77);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->phases().size(), b->phases().size());
    ASSERT_FALSE(a->phases().empty());
    for (size_t i = 0; i < a->phases().size(); ++i) {
      EXPECT_EQ(a->phases()[i].plan.seed, b->phases()[i].plan.seed);
      EXPECT_EQ(a->phases()[i].plan.broken_cores,
                b->phases()[i].plan.broken_cores);
      EXPECT_TRUE(a->phases()[i].plan.Validate().ok());
    }
    // Steps map onto phases in order and clamp at the end.
    EXPECT_EQ(a->PhaseIndexForStep(0), 0u);
    EXPECT_EQ(a->PhaseIndexForStep(a->total_steps() + 100),
              a->phases().size() - 1);
  }
}

TEST(ChaosSchedule, ProfileNamesRoundTrip) {
  for (size_t p = 0; p < fault::kNumChaosProfiles; ++p) {
    const auto profile = static_cast<fault::ChaosProfile>(p);
    auto parsed = fault::ChaosProfileFromName(fault::ChaosProfileName(profile));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, profile);
  }
  EXPECT_FALSE(fault::ChaosProfileFromName("tsunami").ok());
}

TEST(ChaosSchedule, MeltdownBreaksEveryCoreThenHeals) {
  auto schedule = fault::ChaosSchedule::Make(fault::ChaosProfile::kMeltdown,
                                             3);
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->phases().size(), 3u);
  EXPECT_TRUE(schedule->phases()[0].plan.broken_cores.empty());
  EXPECT_EQ(schedule->phases()[1].plan.broken_cores.size(), 4u);
  EXPECT_TRUE(schedule->phases()[2].heal);
  EXPECT_FALSE(schedule->phases()[2].plan.enabled());
}

}  // namespace
}  // namespace dba::service
