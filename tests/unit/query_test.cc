#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>

#include "common/random.h"
#include "common/thread_pool.h"
#include "query/engine.h"
#include "query/planner.h"
#include "query/index.h"
#include "query/predicate.h"
#include "query/table.h"

namespace dba::query {
namespace {

// Reference: evaluate a predicate by scanning every row.
bool RowMatches(const Table& table, const Predicate& predicate, Rid rid) {
  if (predicate.is_leaf()) {
    const uint32_t value = *table.Value(predicate.column, rid);
    return value >= predicate.lo && value <= predicate.hi;
  }
  switch (predicate.kind) {
    case Predicate::Kind::kNot:
      return !RowMatches(table, *predicate.children[0], rid);
    case Predicate::Kind::kAnd:
      for (const auto& child : predicate.children) {
        if (!RowMatches(table, *child, rid)) return false;
      }
      return true;
    case Predicate::Kind::kOr:
      for (const auto& child : predicate.children) {
        if (RowMatches(table, *child, rid)) return true;
      }
      return false;
    default:
      return false;
  }
}

std::vector<Rid> ScanSelect(const Table& table, const Predicate& predicate) {
  std::vector<Rid> rids;
  for (Rid rid = 0; rid < table.num_rows(); ++rid) {
    if (RowMatches(table, predicate, rid)) rids.push_back(rid);
  }
  return rids;
}

Table MakeOrdersTable(uint32_t rows, uint64_t seed) {
  Random rng(seed);
  Table table("orders");
  std::vector<uint32_t> region(rows);
  std::vector<uint32_t> status(rows);
  std::vector<uint32_t> amount(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    region[i] = static_cast<uint32_t>(rng.Uniform(5));
    status[i] = static_cast<uint32_t>(rng.Uniform(3));
    amount[i] = static_cast<uint32_t>(rng.Uniform(10000));
  }
  EXPECT_TRUE(table.AddColumn("region", std::move(region)).ok());
  EXPECT_TRUE(table.AddColumn("status", std::move(status)).ok());
  EXPECT_TRUE(table.AddColumn("amount", std::move(amount)).ok());
  return table;
}

// --- Table ---

TEST(TableTest, AddAndAccessColumns) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", {1, 2, 3}).ok());
  ASSERT_TRUE(table.AddColumn("b", {4, 5, 6}).ok());
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_TRUE(table.HasColumn("a"));
  EXPECT_FALSE(table.HasColumn("c"));
  EXPECT_EQ((*table.Column("b"))[1], 5u);
  EXPECT_EQ(*table.Value("a", 2), 3u);
  EXPECT_EQ(table.ColumnNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(TableTest, Validation) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", {1, 2, 3}).ok());
  EXPECT_EQ(table.AddColumn("a", {7, 8, 9}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(table.AddColumn("b", {1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.Column("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(table.Value("a", 5).status().code(), StatusCode::kOutOfRange);
}

// --- SecondaryIndex ---

TEST(SecondaryIndexTest, ProbesReturnSortedRids) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("k", {5, 1, 5, 3, 5, 1}).ok());
  auto index = SecondaryIndex::Build(table, "k");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->ProbeEquals(5), (std::vector<Rid>{0, 2, 4}));
  EXPECT_EQ(index->ProbeEquals(1), (std::vector<Rid>{1, 5}));
  EXPECT_TRUE(index->ProbeEquals(7).empty());
  EXPECT_EQ(index->ProbeRange(1, 3), (std::vector<Rid>{1, 3, 5}));
  EXPECT_EQ(index->ProbeRange(0, 0xFFFFFFFF), index->AllRids());
  EXPECT_TRUE(index->ProbeRange(4, 2).empty());  // inverted range
  EXPECT_EQ(*index->MinValue(), 1u);
  EXPECT_EQ(*index->MaxValue(), 5u);
}

TEST(SecondaryIndexTest, UnknownColumnFails) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("k", {1}).ok());
  EXPECT_FALSE(SecondaryIndex::Build(table, "nope").ok());
}

// --- Predicate ---

TEST(PredicateTest, BuildersAndToString) {
  auto predicate = And(Equals("region", 3),
                       Not(Or(Equals("status", 1), GreaterEq("amount", 100))));
  EXPECT_EQ(predicate->ToString(),
            "(region = 3 AND NOT (status = 1 OR amount >= 100))");
  EXPECT_FALSE(predicate->is_leaf());
  EXPECT_TRUE(Equals("x", 1)->is_leaf());
  EXPECT_EQ(Between("x", 2, 9)->ToString(), "x BETWEEN 2 AND 9");
  EXPECT_EQ(LessEq("x", 9)->ToString(), "x <= 9");
}

// --- QueryEngine ---

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : table_(MakeOrdersTable(4000, 77)) {
    auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
    EXPECT_TRUE(processor.ok());
    processor_ = *std::move(processor);
    engine_ = std::make_unique<QueryEngine>(&table_, processor_.get());
    EXPECT_TRUE(engine_->BuildIndex("region").ok());
    EXPECT_TRUE(engine_->BuildIndex("status").ok());
    EXPECT_TRUE(engine_->BuildIndex("amount").ok());
  }

  void ExpectMatchesScan(const Predicate& predicate) {
    QueryStats stats;
    auto rids = engine_->Select(predicate, &stats);
    ASSERT_TRUE(rids.ok()) << rids.status();
    EXPECT_EQ(*rids, ScanSelect(table_, predicate)) << predicate.ToString();
  }

  Table table_;
  std::unique_ptr<Processor> processor_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, SingleLeaf) {
  ExpectMatchesScan(*Equals("region", 2));
  ExpectMatchesScan(*Between("amount", 1000, 2000));
  ExpectMatchesScan(*LessEq("amount", 500));
  ExpectMatchesScan(*GreaterEq("amount", 9500));
}

TEST_F(QueryEngineTest, ConjunctionUsesIntersection) {
  QueryStats stats;
  auto predicate = And(Equals("region", 1), Equals("status", 0));
  auto rids = engine_->Select(*predicate, &stats);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, ScanSelect(table_, *predicate));
  EXPECT_EQ(stats.index_probes, 2u);
  EXPECT_EQ(stats.set_operations, 1u);
  EXPECT_GT(stats.accelerator_cycles, 0u);
  EXPECT_GT(stats.accelerator_seconds, 0.0);
  ASSERT_EQ(stats.plan.size(), 3u);
  EXPECT_NE(stats.plan[2].find("intersect"), std::string::npos);
}

TEST_F(QueryEngineTest, DisjunctionUsesUnion) {
  QueryStats stats;
  auto predicate = Or(Equals("region", 0), Equals("region", 4));
  auto rids = engine_->Select(*predicate, &stats);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, ScanSelect(table_, *predicate));
  EXPECT_EQ(stats.set_operations, 1u);
  EXPECT_NE(stats.plan[2].find("union"), std::string::npos);
}

TEST_F(QueryEngineTest, AndNotUsesDifferenceWithoutComplement) {
  QueryStats stats;
  auto predicate = And(Equals("region", 1), Not(Equals("status", 2)));
  auto rids = engine_->Select(*predicate, &stats);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, ScanSelect(table_, *predicate));
  bool used_difference = false;
  for (const std::string& step : stats.plan) {
    used_difference |= step.find("difference") != std::string::npos;
  }
  EXPECT_TRUE(used_difference);
  // Exactly one set operation: A \ B, no complement materialization.
  EXPECT_EQ(stats.set_operations, 1u);
}

TEST_F(QueryEngineTest, TopLevelNotComplements) {
  auto predicate = Not(Equals("region", 3));
  ExpectMatchesScan(*predicate);
}

TEST_F(QueryEngineTest, NestedBooleanStructure) {
  auto predicate =
      And(Or(Equals("region", 0), Equals("region", 1)),
          And(Between("amount", 2000, 8000), Not(Equals("status", 1))));
  ExpectMatchesScan(*predicate);
}

TEST_F(QueryEngineTest, EmptyResults) {
  ExpectMatchesScan(*Equals("region", 99));       // no such value
  ExpectMatchesScan(*And(Equals("region", 99),    // empty AND arm
                         Equals("status", 0)));
  ExpectMatchesScan(*Or(Equals("region", 99), Equals("region", 98)));
}

TEST_F(QueryEngineTest, MissingIndexIsReported) {
  Table extra("extra");
  ASSERT_TRUE(extra.AddColumn("x", {1, 2}).ok());
  QueryEngine engine(&extra, processor_.get());
  auto rids = engine.Select(*Equals("x", 1));
  EXPECT_EQ(rids.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(QueryEngineTest, OrderedValues) {
  QueryStats stats;
  auto predicate = Equals("region", 2);
  auto values = engine_->SelectValuesOrdered(*predicate, "amount", &stats);
  ASSERT_TRUE(values.ok()) << values.status();
  // Matches the scan + sort reference.
  std::vector<uint32_t> expected;
  for (Rid rid : ScanSelect(table_, *predicate)) {
    expected.push_back(*table_.Value("amount", rid));
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*values, expected);
  EXPECT_EQ(stats.sorts, 1u);
}

TEST_F(QueryEngineTest, ChunkedOrderByBeyondLocalStore) {
  // A predicate matching nearly everything: the ORDER BY input exceeds
  // the 8k-element local-store sort capacity.
  Table big("big");
  Random rng(5);
  std::vector<uint32_t> key(30000);
  std::vector<uint32_t> flag(30000);
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = rng.Next32() % 100000;
    flag[i] = static_cast<uint32_t>(rng.Uniform(10) != 0);  // 90% ones
  }
  std::vector<uint32_t> key_copy = key;
  ASSERT_TRUE(big.AddColumn("key", std::move(key)).ok());
  ASSERT_TRUE(big.AddColumn("flag", std::move(flag)).ok());
  QueryEngine engine(&big, processor_.get());
  ASSERT_TRUE(engine.BuildIndex("flag").ok());

  QueryStats stats;
  auto predicate = Equals("flag", 1);
  auto values = engine.SelectValuesOrdered(*predicate, "key", &stats);
  ASSERT_TRUE(values.ok()) << values.status();
  EXPECT_GT(stats.sorts, 1u);  // chunked
  EXPECT_TRUE(std::is_sorted(values->begin(), values->end()));
  std::vector<uint32_t> expected;
  for (Rid rid = 0; rid < big.num_rows(); ++rid) {
    if (*big.Value("flag", rid) == 1) expected.push_back(key_copy[rid]);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*values, expected);
}

TEST_F(QueryEngineTest, RandomizedPredicatesMatchScan) {
  Random rng(123);
  for (int trial = 0; trial < 25; ++trial) {
    // Random depth-2 boolean structure.
    auto leaf = [&rng]() -> PredicatePtr {
      switch (rng.Uniform(3)) {
        case 0:
          return Equals("region", static_cast<uint32_t>(rng.Uniform(6)));
        case 1:
          return Equals("status", static_cast<uint32_t>(rng.Uniform(4)));
        default: {
          const auto lo = static_cast<uint32_t>(rng.Uniform(9000));
          return Between("amount", lo,
                         lo + static_cast<uint32_t>(rng.Uniform(4000)));
        }
      }
    };
    auto maybe_not = [&rng, &leaf]() {
      auto p = leaf();
      return rng.Bernoulli(0.3) ? Not(std::move(p)) : std::move(p);
    };
    PredicatePtr predicate;
    if (rng.Bernoulli(0.5)) {
      predicate = And(maybe_not(), Or(maybe_not(), maybe_not()));
    } else {
      predicate = Or(And(maybe_not(), maybe_not()), maybe_not());
    }
    QueryStats stats;
    auto rids = engine_->Select(*predicate, &stats);
    ASSERT_TRUE(rids.ok()) << predicate->ToString() << ": " << rids.status();
    ASSERT_EQ(*rids, ScanSelect(table_, *predicate))
        << "trial " << trial << ": " << predicate->ToString();
  }
}

TEST_F(QueryEngineTest, InListPredicate) {
  auto predicate = In("region", {0, 2, 4});
  ExpectMatchesScan(*predicate);
  // Single-value IN degenerates to an equality leaf.
  auto single = In("region", {3});
  EXPECT_TRUE(single->is_leaf());
  ExpectMatchesScan(*single);
}

TEST_F(QueryEngineTest, JoinKeysMatchesReference) {
  // Build a second table sharing ~half the key domain.
  Table customers("customers");
  Random rng(31);
  std::vector<uint32_t> left_keys;
  std::vector<uint32_t> right_keys;
  uint32_t next = 0;
  for (int i = 0; i < 3000; ++i) {
    next += 1 + static_cast<uint32_t>(rng.Uniform(4));
    if (rng.Bernoulli(0.7)) left_keys.push_back(next);
    if (rng.Bernoulli(0.7)) right_keys.push_back(next);
  }
  // Shuffle: JoinKeys must sort them itself.
  for (size_t i = left_keys.size(); i > 1; --i) {
    std::swap(left_keys[i - 1], left_keys[rng.Uniform(i)]);
  }
  for (size_t i = right_keys.size(); i > 1; --i) {
    std::swap(right_keys[i - 1], right_keys[rng.Uniform(i)]);
  }
  std::vector<uint32_t> left_sorted = left_keys;
  std::vector<uint32_t> right_sorted = right_keys;
  std::sort(left_sorted.begin(), left_sorted.end());
  std::sort(right_sorted.begin(), right_sorted.end());
  std::vector<uint32_t> expected;
  std::set_intersection(left_sorted.begin(), left_sorted.end(),
                        right_sorted.begin(), right_sorted.end(),
                        std::back_inserter(expected));

  Table orders2("orders2");
  ASSERT_TRUE(orders2.AddColumn("cust_key", std::move(left_keys)).ok());
  ASSERT_TRUE(customers.AddColumn("key", std::move(right_keys)).ok());
  QueryEngine engine(&orders2, processor_.get());
  QueryStats stats;
  auto keys = engine.JoinKeys("cust_key", customers, "key", &stats);
  ASSERT_TRUE(keys.ok()) << keys.status();
  EXPECT_EQ(*keys, expected);
  EXPECT_GE(stats.sorts, 2u);
  EXPECT_GE(stats.set_operations, 1u);
}

TEST_F(QueryEngineTest, ConcurrentJoinKeysMatchesSerial) {
  // The two key-column sorts are independent; running them on
  // concurrent host threads (the second on a sibling processor) must
  // leave results, cycle counts, and the rendered plan bit-identical.
  Table customers("customers");
  Table orders2("orders2");
  Random rng(47);
  std::vector<uint32_t> left_keys;
  std::vector<uint32_t> right_keys;
  uint32_t next = 0;
  for (int i = 0; i < 2000; ++i) {
    next += 1 + static_cast<uint32_t>(rng.Uniform(3));
    if (rng.Bernoulli(0.6)) left_keys.push_back(next);
    if (rng.Bernoulli(0.6)) right_keys.push_back(next);
  }
  ASSERT_TRUE(orders2.AddColumn("cust_key", std::move(left_keys)).ok());
  ASSERT_TRUE(customers.AddColumn("key", std::move(right_keys)).ok());

  QueryEngine serial(&orders2, processor_.get());
  QueryStats serial_stats;
  auto serial_keys =
      serial.JoinKeys("cust_key", customers, "key", &serial_stats);
  ASSERT_TRUE(serial_keys.ok()) << serial_keys.status();

  auto sibling = Processor::Create(processor_->kind(),
                                   processor_->options());
  ASSERT_TRUE(sibling.ok());
  common::ThreadPool pool(2);
  QueryEngine parallel(&orders2, processor_.get());
  parallel.EnableConcurrentSorts(&pool, sibling->get());
  QueryStats parallel_stats;
  auto parallel_keys =
      parallel.JoinKeys("cust_key", customers, "key", &parallel_stats);
  ASSERT_TRUE(parallel_keys.ok()) << parallel_keys.status();

  EXPECT_EQ(*parallel_keys, *serial_keys);
  EXPECT_EQ(parallel_stats.sorts, serial_stats.sorts);
  EXPECT_EQ(parallel_stats.set_operations, serial_stats.set_operations);
  EXPECT_EQ(parallel_stats.accelerator_cycles,
            serial_stats.accelerator_cycles);
  EXPECT_EQ(parallel_stats.elements_processed,
            serial_stats.elements_processed);
  EXPECT_EQ(parallel_stats.plan, serial_stats.plan);
}

TEST_F(QueryEngineTest, JoinKeysRejectsDuplicateKeys) {
  Table left("left");
  Table right("right");
  ASSERT_TRUE(left.AddColumn("k", {1, 2, 2, 3}).ok());
  ASSERT_TRUE(right.AddColumn("k", {1, 2, 3, 4}).ok());
  QueryEngine engine(&left, processor_.get());
  EXPECT_EQ(engine.JoinKeys("k", right, "k").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(QueryEngineTest, UpdateColumnBumpsVersionAndRebuildsStaleIndex) {
  ASSERT_EQ(*table_.ColumnVersion("region"), 1u);

  Random rng(321);
  std::vector<uint32_t> fresh(table_.num_rows());
  for (auto& value : fresh) value = static_cast<uint32_t>(rng.Uniform(5));
  ASSERT_TRUE(table_.UpdateColumn("region", std::move(fresh)).ok());
  EXPECT_EQ(*table_.ColumnVersion("region"), 2u);
  EXPECT_EQ(*table_.ColumnVersion("status"), 1u);

  // The engine still holds the index built against version 1; Select
  // must notice the stale version and rebuild before probing.
  auto predicate = And(Equals("region", 2), Equals("status", 1));
  auto rids = engine_->Select(*predicate);
  ASSERT_TRUE(rids.ok()) << rids.status();
  EXPECT_EQ(*rids, ScanSelect(table_, *predicate));

  // A second mutation while queries interleave with it: each Select
  // after the update sees the new values, never the old index.
  std::vector<uint32_t> again(table_.num_rows(), 2);
  ASSERT_TRUE(table_.UpdateColumn("region", std::move(again)).ok());
  EXPECT_EQ(*table_.ColumnVersion("region"), 3u);
  auto rids2 = engine_->Select(*predicate);
  ASSERT_TRUE(rids2.ok()) << rids2.status();
  EXPECT_EQ(*rids2, ScanSelect(table_, *predicate));
}

TEST_F(QueryEngineTest, SubmitAsyncMatchesSelect) {
  std::shared_ptr<const Predicate> predicate(
      And(Equals("region", 1), GreaterEq("amount", 4000)));
  const auto expected = ScanSelect(table_, *predicate);

  auto future = engine_->Submit(predicate);
  auto rids = future.get();
  ASSERT_TRUE(rids.ok()) << rids.status();
  EXPECT_EQ(*rids, expected);

  // Several submissions in flight at once: the engine serializes them
  // internally and every future resolves to the same answer.
  std::vector<std::future<Result<std::vector<Rid>>>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(engine_->Submit(predicate));
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(*result, expected);
  }
}

// Regression: retry accounting used to be wired only into the EIS
// dispatch path, so planner-routed host kernels (galloping / SIMD
// merge) silently ignored SetMaxAttempts and reported retries == 0
// even when the fault hook failed their first attempt.
TEST_F(QueryEngineTest, RetryAccountingIsRouteIndependent) {
  auto predicate = And(Equals("region", 1), Equals("status", 0));
  const auto expected = ScanSelect(table_, *predicate);

  for (const Route route :
       {Route::kEisMerge, Route::kGalloping, Route::kSimdMerge}) {
    QueryEngine engine(&table_, processor_.get());
    ASSERT_TRUE(engine.BuildIndex("region").ok());
    ASSERT_TRUE(engine.BuildIndex("status").ok());
    PlannerOptions options;
    options.force_route = route;
    engine.EnableAdaptivePlanner(options);
    engine.SetMaxAttempts(2);
    // Fail exactly the first attempt of every set operation; the retry
    // budget must cover it regardless of which kernel the planner
    // picked.
    engine.SetAttemptFaultHook([](std::string_view, int attempt) {
      return attempt == 0 ? Status::Unavailable("injected") : Status::Ok();
    });

    QueryStats stats;
    auto rids = engine.Select(*predicate, &stats);
    ASSERT_TRUE(rids.ok()) << RouteName(route) << ": " << rids.status();
    EXPECT_EQ(*rids, expected) << RouteName(route);
    EXPECT_EQ(stats.set_operations, 1u) << RouteName(route);
    EXPECT_EQ(stats.retries, 1u) << RouteName(route);

    // With attempts capped at 1 the same schedule must surface the
    // injected failure instead of silently succeeding.
    engine.SetMaxAttempts(1);
    auto failed = engine.Select(*predicate);
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable)
        << RouteName(route);
  }
}

TEST_F(QueryEngineTest, WorksOnScalarConfigurationToo) {
  auto mini = Processor::Create(ProcessorKind::k108Mini);
  ASSERT_TRUE(mini.ok());
  QueryEngine engine(&table_, mini->get());
  ASSERT_TRUE(engine.BuildIndex("region").ok());
  ASSERT_TRUE(engine.BuildIndex("status").ok());
  auto predicate = And(Equals("region", 1), Equals("status", 0));
  auto rids = engine.Select(*predicate);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, ScanSelect(table_, *predicate));
}

}  // namespace
}  // namespace dba::query
