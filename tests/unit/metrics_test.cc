// Tests of the runtime-metrics subsystem (src/obs/metrics): log-bucket
// boundaries, quantile accuracy, deterministic merging across host
// threads, the Prometheus text exposition, the dba.metrics.v1 JSON
// schema, ScopedSpan trace-sink integration, the structured event log,
// and the end-to-end acceptance property -- a fault-injected board run
// whose registry counters match RecoveryTelemetry exactly and whose
// snapshot is byte-identical at any host thread count.

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/workload.h"
#include "obs/metrics/event_log.h"
#include "obs/metrics/metrics.h"
#include "obs/metrics_json.h"
#include "obs/trace_writer.h"
#include "system/board.h"

namespace dba::obs {
namespace {

// --- Histogram bucketing ---

TEST(HistogramBucketTest, SmallValuesGetExactUnitBuckets) {
  for (std::uint64_t value = 0; value < 16; ++value) {
    EXPECT_EQ(Histogram::BucketIndex(value), value);
    EXPECT_EQ(Histogram::BucketLowerBound(value), value);
    EXPECT_EQ(Histogram::BucketUpperBound(value), value + 1);
  }
}

TEST(HistogramBucketTest, BoundsPartitionTheValueRange) {
  for (std::size_t index = 0; index + 1 < kHistogramBuckets; ++index) {
    // Buckets tile the axis: each upper bound is the next lower bound.
    EXPECT_EQ(Histogram::BucketUpperBound(index),
              Histogram::BucketLowerBound(index + 1));
    // Every bucket contains its own lower bound.
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(index)),
              index);
    // And its last value.
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(index) - 1),
              index);
  }
  EXPECT_EQ(Histogram::BucketUpperBound(kHistogramBuckets - 1), UINT64_MAX);
}

TEST(HistogramBucketTest, IndexIsMonotoneAndContainsValue) {
  std::size_t previous = 0;
  for (std::uint64_t value = 0; value < 3'000'000; value += 997) {
    const std::size_t index = Histogram::BucketIndex(value);
    EXPECT_GE(index, previous);
    EXPECT_LE(Histogram::BucketLowerBound(index), value);
    EXPECT_GT(Histogram::BucketUpperBound(index), value);
    previous = index;
  }
}

TEST(HistogramBucketTest, RelativeBucketWidthIsBounded) {
  // Four sub-buckets per octave: width / lower <= 1/4 for every
  // non-unit bucket below the top one.
  for (std::size_t index = 16; index + 1 < kHistogramBuckets; ++index) {
    const double lower =
        static_cast<double>(Histogram::BucketLowerBound(index));
    const double width =
        static_cast<double>(Histogram::BucketUpperBound(index)) - lower;
    EXPECT_LE(width / lower, 0.25) << "bucket " << index;
  }
}

// --- Quantiles ---

TEST(HistogramTest, CountAndSumAreExact) {
  Histogram histogram;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t value = 0; value < 1000; ++value) {
    histogram.Observe(value * value);
    expected_sum += value * value;
  }
  const HistogramStats stats = histogram.Stats();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_EQ(stats.sum, expected_sum);
}

TEST(HistogramTest, QuantilesAreAccurateToOneBucket) {
  // Deterministic pseudo-random workload (an LCG; no std::random to keep
  // the sequence stable across standard libraries).
  Histogram histogram;
  std::vector<std::uint64_t> values;
  std::uint64_t state = 88172645463325252ull;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t value = (state >> 33) % 1'000'000;
    values.push_back(value);
    histogram.Observe(value);
  }
  std::sort(values.begin(), values.end());
  const HistogramStats stats = histogram.Stats();
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t exact = values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
    const double estimate = stats.Quantile(q);
    const std::size_t exact_bucket = Histogram::BucketIndex(exact);
    // The estimate may sit exactly on a bucket boundary; allow one
    // bucket of slack on either side.
    const std::size_t estimate_bucket =
        Histogram::BucketIndex(static_cast<std::uint64_t>(estimate));
    EXPECT_LE(estimate_bucket > exact_bucket
                  ? estimate_bucket - exact_bucket
                  : exact_bucket - estimate_bucket,
              1u)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.Stats().Quantile(0.5), 0.0);
}

// --- Deterministic merging ---

TEST(MetricsMergeTest, ValuesAreInvariantUnderThreadPartitioning) {
  // The same multiset of updates, partitioned across 1, 2, and 8
  // threads, must merge to the same counter value and histogram stats.
  std::uint64_t reference_count = 0;
  HistogramStats reference_stats;
  for (const int threads : {1, 2, 8}) {
    Counter counter;
    Histogram histogram;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = t; i < 4096; i += threads) {
          counter.Increment(static_cast<std::uint64_t>(i % 7));
          histogram.Observe(static_cast<std::uint64_t>(i * 13 % 100000));
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    if (threads == 1) {
      reference_count = counter.Value();
      reference_stats = histogram.Stats();
    } else {
      EXPECT_EQ(counter.Value(), reference_count);
      EXPECT_EQ(histogram.Stats(), reference_stats);
    }
  }
}

TEST(MetricsMergeTest, ConcurrentHammerLosesNothing) {
  // TSan coverage: eight threads hammer one counter and one histogram.
  Counter counter;
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kUpdates = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kUpdates; ++i) {
        counter.Increment();
        histogram.Observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kUpdates);
  EXPECT_EQ(histogram.Stats().count,
            static_cast<std::uint64_t>(kThreads) * kUpdates);
}

// --- Registry ---

TEST(MetricsRegistryTest, SameIdentityReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reg_test_total", "help");
  Counter* b = registry.GetCounter("reg_test_total");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("reg_test_total", "kind", "x", "help");
  EXPECT_NE(labeled, a);
}

TEST(MetricsRegistryTest, KindConflictReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("conflicted"), nullptr);
  EXPECT_EQ(registry.GetGauge("conflicted"), nullptr);
  EXPECT_EQ(registry.GetHistogram("conflicted"), nullptr);
  EXPECT_NE(registry.GetCounter("conflicted"), nullptr);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistration) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("reset_total");
  Histogram* histogram = registry.GetHistogram("reset_cycles");
  counter->Increment(5);
  histogram->Observe(42);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Stats().count, 0u);
  // The cached pointer is still the registered instrument.
  EXPECT_EQ(registry.GetCounter("reset_total"), counter);
  counter->Increment();
  EXPECT_EQ(registry.Snapshot().counters.at("reset_total"), 1u);
}

TEST(MetricsRegistryTest, SnapshotUsesIdentityStrings) {
  MetricsRegistry registry;
  registry.GetCounter("snap_total", "kind", "a", "")->Increment(2);
  registry.GetGauge("snap_level")->Set(3.5);
  registry.GetHistogram("snap_cycles")->Observe(10);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("snap_total{kind=\"a\"}"), 2u);
  EXPECT_EQ(snapshot.gauges.at("snap_level"), 3.5);
  EXPECT_EQ(snapshot.histograms.at("snap_cycles").count, 1u);
}

// --- Prometheus exposition ---

TEST(PrometheusTest, GoldenFormat) {
  MetricsRegistry registry;
  registry.GetCounter("test_ops_total", "Operations.")->Increment(3);
  registry.GetCounter("test_runs_total", "kind", "a", "Runs by kind.")
      ->Increment(1);
  registry.GetCounter("test_runs_total", "kind", "b", "Runs by kind.")
      ->Increment(2);
  registry.GetGauge("test_level")->Set(1.5);
  Histogram* histogram = registry.GetHistogram("test_latency", "Latency.");
  histogram->Observe(3);
  histogram->Observe(3);
  histogram->Observe(300);

  const std::string expected =
      "# HELP test_latency Latency.\n"
      "# TYPE test_latency histogram\n"
      "test_latency_bucket{le=\"4\"} 2\n"
      "test_latency_bucket{le=\"320\"} 3\n"
      "test_latency_bucket{le=\"+Inf\"} 3\n"
      "test_latency_sum 306\n"
      "test_latency_count 3\n"
      "# TYPE test_level gauge\n"
      "test_level 1.5\n"
      "# HELP test_ops_total Operations.\n"
      "# TYPE test_ops_total counter\n"
      "test_ops_total 3\n"
      "# HELP test_runs_total Runs by kind.\n"
      "# TYPE test_runs_total counter\n"
      "test_runs_total{kind=\"a\"} 1\n"
      "test_runs_total{kind=\"b\"} 2\n";
  EXPECT_EQ(registry.ExposePrometheus(), expected);
}

TEST(PrometheusTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("cum_cycles");
  for (std::uint64_t value : {1ull, 1ull, 2ull, 100ull}) {
    histogram->Observe(value);
  }
  const std::string text = registry.ExposePrometheus();
  // The +Inf bucket always equals the total count.
  EXPECT_NE(text.find("cum_cycles_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("cum_cycles_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("cum_cycles_sum 104\n"), std::string::npos);
}

// --- dba.metrics.v1 JSON ---

TEST(MetricsJsonTest, SnapshotRoundTripValidates) {
  MetricsRegistry registry;
  registry.GetCounter("json_total", "kind", "x", "")->Increment(7);
  registry.GetGauge("json_level")->Set(-2.5);
  Histogram* histogram = registry.GetHistogram("json_cycles");
  histogram->Observe(5);
  histogram->Observe(5000);
  const JsonValue document = MetricsSnapshotToJson(registry.Snapshot());
  ASSERT_TRUE(ValidateMetricsJson(document).ok());
  auto reparsed = JsonValue::Parse(document.Dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(ValidateMetricsJson(*reparsed).ok());
  EXPECT_EQ(reparsed->at("counters").at("json_total{kind=\"x\"}").as_u64(),
            7u);
  EXPECT_EQ(reparsed->at("histograms").at("json_cycles").at("count").as_u64(),
            2u);
}

TEST(MetricsJsonTest, ValidatorRejectsBadDocuments) {
  // Wrong schema tag.
  auto bad = JsonValue::Parse(
      "{\"schema\":\"dba.metrics.v0\",\"counters\":{},\"gauges\":{},"
      "\"histograms\":{}}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateMetricsJson(*bad).ok());

  // Negative counter.
  bad = JsonValue::Parse(
      "{\"schema\":\"dba.metrics.v1\",\"counters\":{\"x\":-1},"
      "\"gauges\":{},\"histograms\":{}}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateMetricsJson(*bad).ok());

  // Histogram whose bucket counts do not sum to its count.
  bad = JsonValue::Parse(
      "{\"schema\":\"dba.metrics.v1\",\"counters\":{},\"gauges\":{},"
      "\"histograms\":{\"h\":{\"count\":3,\"sum\":10,\"p50\":1,\"p90\":1,"
      "\"p99\":1,\"p999\":1,\"buckets\":[[4,1]]}}}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateMetricsJson(*bad).ok());

  // Descending bucket bounds.
  bad = JsonValue::Parse(
      "{\"schema\":\"dba.metrics.v1\",\"counters\":{},\"gauges\":{},"
      "\"histograms\":{\"h\":{\"count\":2,\"sum\":10,\"p50\":1,\"p90\":1,"
      "\"p99\":1,\"p999\":1,\"buckets\":[[8,1],[4,1]]}}}");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ValidateMetricsJson(*bad).ok());

  // A minimal well-formed document passes.
  auto good = JsonValue::Parse(
      "{\"schema\":\"dba.metrics.v1\",\"counters\":{\"x\":1},"
      "\"gauges\":{\"g\":0.5},\"histograms\":{}}");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(ValidateMetricsJson(*good).ok());
}

// --- ScopedSpan ---

TEST(ScopedSpanTest, FeedsHistogramAndTraceSink) {
  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("span_cycles");
  ChromeTraceWriter writer("metrics-test");
  {
    ScopedSpan span(latency, &writer, "work", 100);
    span.SetEndCycle(250);
  }
  EXPECT_EQ(writer.event_count(), 2u);  // B + E
  const HistogramStats stats = latency->Stats();
  ASSERT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.sum, 150u);
}

TEST(ScopedSpanTest, AbandonedSpanRecordsNothing) {
  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("abandoned_cycles");
  ChromeTraceWriter writer("metrics-test");
  {
    ScopedSpan span(latency, &writer, "failed-run", 10);
    // No SetEndCycle: the run failed.
  }
  EXPECT_EQ(latency->Stats().count, 0u);
  // Only the B event; the writer closes dangling regions at flush.
  EXPECT_EQ(writer.event_count(), 1u);
  EXPECT_TRUE(writer.ToJson().is_object());
}

TEST(ScopedSpanTest, WorksWithoutASink) {
  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("sinkless_cycles");
  {
    ScopedSpan span(latency, nullptr, "work", 0);
    span.SetEndCycle(42);
  }
  EXPECT_EQ(latency->Stats().sum, 42u);
}

// --- EventLog ---

TEST(EventLogTest, RingKeepsTheMostRecentEvents) {
  EventLog log(4);
  for (int i = 0; i < 6; ++i) {
    log.Log(EventLevel::kInfo, "test", "event " + std::to_string(i),
            {{"i", std::to_string(i)}}, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(log.total(), 6u);
  const std::vector<Event> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().seq, 2u);          // oldest surviving
  EXPECT_EQ(tail.back().seq, 5u);           // newest
  EXPECT_EQ(tail.back().message, "event 5");
  EXPECT_EQ(tail.back().cycle, 5u);
  ASSERT_EQ(tail.back().fields.size(), 1u);
  EXPECT_EQ(tail.back().fields[0].first, "i");
}

TEST(EventLogTest, LevelsAreCountedAndNamed) {
  EventLog log(8);
  log.Log(EventLevel::kWarn, "test", "w");
  log.Log(EventLevel::kWarn, "test", "w");
  log.Log(EventLevel::kError, "test", "e");
  EXPECT_EQ(log.total(EventLevel::kWarn), 2u);
  EXPECT_EQ(log.total(EventLevel::kError), 1u);
  EXPECT_EQ(log.total(EventLevel::kDebug), 0u);
  EXPECT_EQ(EventLevelName(EventLevel::kWarn), "warn");
  EXPECT_EQ(EventLevelName(EventLevel::kError), "error");
  log.Clear();
  EXPECT_EQ(log.total(), 0u);
  EXPECT_TRUE(log.Tail(8).empty());
}

// --- End-to-end acceptance: fault-injected board run ---

system::BoardConfig AcceptanceConfig(int host_threads) {
  system::BoardConfig config;
  config.num_cores = 8;
  config.host_threads = host_threads;
  config.fault_plan.seed = 20140622;
  config.fault_plan.hang_rate = 0.1;
  config.fault_plan.input_flip_rate = 0.1;
  config.fault_plan.result_flip_rate = 0.1;
  config.fault_plan.transfer_fail_rate = 0.1;
  config.fault_plan.transfer_timeout_rate = 0.1;
  config.fault_plan.hang_watchdog_cycles = 4000;
  config.fault_plan.broken_cores = {0, 1};
  config.recovery.max_attempts = 6;
  return config;
}

TEST(MetricsBoardTest, RegistryMatchesRecoveryTelemetryAtAnyThreadCount) {
  auto pair = GenerateSetPair(60000, 60000, 0.5, 20140622);
  ASSERT_TRUE(pair.ok());

  // Warmup run: registers every instrument the workload touches so the
  // measured snapshots below share one instrument set.
  {
    MetricsRegistry::Global().Reset();
    auto board = system::Board::Create(AcceptanceConfig(1));
    ASSERT_TRUE(board.ok());
    auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }

  std::string reference_dump;
  for (const int host_threads : {1, 2, 8}) {
    MetricsRegistry::Global().Reset();
    auto board = system::Board::Create(AcceptanceConfig(host_threads));
    ASSERT_TRUE(board.ok());
    auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    const auto counter = [&snapshot](const std::string& name) {
      const auto it = snapshot.counters.find(name);
      return it == snapshot.counters.end() ? std::uint64_t{0} : it->second;
    };
    // Registry counters mirror RecoveryTelemetry exactly: they are
    // incremented at the same points of the deterministic reduce.
    const system::RecoveryTelemetry& recovery = run->recovery;
    EXPECT_EQ(counter("dba_system_faults_injected_total"),
              recovery.faults_injected);
    EXPECT_EQ(counter("dba_system_failed_attempts_total"),
              recovery.failed_attempts);
    EXPECT_EQ(counter("dba_system_retries_total"), recovery.retries);
    EXPECT_EQ(counter("dba_system_requeues_total"), recovery.requeues);
    EXPECT_EQ(counter("dba_system_verification_failures_total"),
              recovery.verification_failures);
    EXPECT_EQ(counter("dba_system_recovery_rounds_total"), recovery.rounds);
    EXPECT_EQ(counter("dba_system_recovery_cycles_total"),
              recovery.recovery_cycles);
    EXPECT_EQ(counter("dba_system_quarantines_total"),
              recovery.quarantined_cores.size());
    EXPECT_GT(counter("dba_system_noc_feed_bytes_total"), 0u);
    EXPECT_EQ(snapshot.gauges.at("dba_system_quarantined_cores"),
              static_cast<double>(recovery.quarantined_cores.size()));

    // The serialized snapshot is byte-identical at any host_threads:
    // instruments only record simulated quantities, and shard merges
    // are commutative integer sums.
    const std::string dump = MetricsSnapshotToJson(snapshot).Dump(2);
    ASSERT_TRUE(ValidateMetricsJson(MetricsSnapshotToJson(snapshot)).ok());
    if (reference_dump.empty()) {
      reference_dump = dump;
      EXPECT_GT(counter("dba_system_faults_injected_total"), 0u)
          << "fault injection did not fire; the acceptance run is vacuous";
    } else {
      EXPECT_EQ(dump, reference_dump)
          << "metrics snapshot differs at host_threads=" << host_threads;
    }
  }
}

}  // namespace
}  // namespace dba::obs
