// Per-instruction unit tests of the EIS datapath, driving single TIE
// operations on a two-LSU core (the paper's per-instruction unit tests,
// Section 3.1).

#include <gtest/gtest.h>

#include "eis/eis_extension.h"
#include "isa/assembler.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"

namespace dba::eis {
namespace {

using isa::Assembler;
using isa::Reg;

constexpr uint64_t kMemABase = 0x1000;
constexpr uint64_t kMemBBase = 0x2000;
constexpr uint64_t kMemCBase = 0x3000;

class EisExtensionTest : public ::testing::Test {
 protected:
  EisExtensionTest()
      : mem_a_(*mem::Memory::Create(
            {.name = "a", .base = kMemABase, .size = 1024,
             .access_latency = 1})),
        mem_b_(*mem::Memory::Create(
            {.name = "b", .base = kMemBBase, .size = 1024,
             .access_latency = 1})),
        mem_c_(*mem::Memory::Create(
            {.name = "c", .base = kMemCBase, .size = 1024,
             .access_latency = 1})),
        cpu_(MakeConfig()) {
    EXPECT_TRUE(cpu_.AttachMemory(&mem_a_).ok());
    EXPECT_TRUE(cpu_.AttachMemory(&mem_b_).ok());
    EXPECT_TRUE(cpu_.AttachMemory(&mem_c_).ok());
    EXPECT_TRUE(ext_.Attach(&cpu_).ok());
  }

  static sim::CoreConfig MakeConfig() {
    sim::CoreConfig config;
    config.num_lsus = 2;
    config.data_bus_bits = 128;
    config.instruction_bus_bits = 64;
    return config;
  }

  /// Runs a program that INITs with the given sets, then executes `ops`.
  Result<sim::ExecStats> RunOps(
      std::vector<uint32_t> a, std::vector<uint32_t> b, SopMode mode,
      bool partial, const std::vector<std::pair<uint16_t, uint16_t>>& ops) {
    EXPECT_TRUE(mem_a_.WriteBlock(kMemABase, a).ok());
    EXPECT_TRUE(mem_b_.WriteBlock(kMemBBase, b).ok());
    Assembler masm;
    masm.Tie(op::kInit, MakeInitOperand(mode, partial));
    for (const auto& [ext_id, operand] : ops) masm.Tie(ext_id, operand);
    masm.Halt();
    auto program = masm.Finish();
    if (!program.ok()) return program.status();
    program_ = *std::move(program);
    cpu_.ResetArchState();
    cpu_.set_reg(isa::abi::kPtrA, kMemABase);
    cpu_.set_reg(isa::abi::kPtrB, kMemBBase);
    cpu_.set_reg(isa::abi::kLenA, static_cast<uint32_t>(a.size()));
    cpu_.set_reg(isa::abi::kLenB, static_cast<uint32_t>(b.size()));
    cpu_.set_reg(isa::abi::kPtrC, kMemCBase);
    DBA_RETURN_IF_ERROR(cpu_.LoadProgram(program_));
    return cpu_.Run();
  }

  mem::Memory mem_a_;
  mem::Memory mem_b_;
  mem::Memory mem_c_;
  sim::Cpu cpu_;
  EisExtension ext_;
  isa::Program program_;
};

TEST_F(EisExtensionTest, InitLoadsStatesFromAbiRegisters) {
  auto stats = RunOps({1, 2, 3, 4}, {5, 6}, SopMode::kIntersect, true, {});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(ext_.mode(), SopMode::kIntersect);
  EXPECT_TRUE(ext_.partial_loading());
  EXPECT_TRUE(ext_.active_flag());
  EXPECT_EQ(ext_.result_count(), 0u);
}

TEST_F(EisExtensionTest, InitRejectsUnalignedPointers) {
  Assembler masm;
  masm.Tie(op::kInit, 0);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  program_ = *std::move(program);
  cpu_.ResetArchState();
  cpu_.set_reg(isa::abi::kPtrA, kMemABase + 4);  // not 16-byte aligned
  cpu_.set_reg(isa::abi::kLenA, 8);              // stream is live
  ASSERT_TRUE(cpu_.LoadProgram(program_).ok());
  EXPECT_EQ(cpu_.Run().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EisExtensionTest, LdFillsLoadStates) {
  auto stats = RunOps({1, 2, 3, 4, 5, 6}, {}, SopMode::kIntersect, true,
                      {{op::kLd0, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.load_fifo_a_size(), 4);
  EXPECT_EQ(ext_.counters().load_beats, 1u);
  EXPECT_EQ(stats->lsu_beats[0], 1u);
  EXPECT_EQ(stats->lsu_beats[1], 0u);
}

TEST_F(EisExtensionTest, LdUsesLsu1ForSetB) {
  auto stats = RunOps({}, {1, 2, 3, 4}, SopMode::kIntersect, true,
                      {{op::kLd1, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.load_fifo_b_size(), 4);
  EXPECT_EQ(stats->lsu_beats[1], 1u);
}

TEST_F(EisExtensionTest, LdShortTail) {
  auto stats =
      RunOps({9, 10}, {}, SopMode::kIntersect, true, {{op::kLd0, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.load_fifo_a_size(), 2);
}

TEST_F(EisExtensionTest, RedundantLdSpendsBeatButKeepsData) {
  // Three LDs on a 12-element stream: Load states hold 8 (two beats),
  // the third beat is a redundant prefetch.
  std::vector<uint32_t> a(12);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<uint32_t>(i);
  auto stats = RunOps(a, {}, SopMode::kIntersect, true,
                      {{op::kLd0, 0}, {op::kLd0, 0}, {op::kLd0, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.load_fifo_a_size(), 8);
  EXPECT_EQ(ext_.counters().load_beats, 3u);
  EXPECT_EQ(stats->lsu_beats[0], 3u);
}

TEST_F(EisExtensionTest, LdPPartialToppingUp) {
  // Partial loading keeps the Word states full (Table 1: "it is ensured
  // that after each operation all Word states are fully filled").
  auto stats = RunOps({1, 2, 3, 4, 5, 6, 7, 8}, {}, SopMode::kIntersect,
                      /*partial=*/true,
                      {{op::kLd0, 0}, {op::kLdP0, 0}, {op::kLd0, 0},
                       {op::kLdP0, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.word_a().count, 4);
  EXPECT_EQ(ext_.word_a().lanes[0], 1u);
  EXPECT_EQ(ext_.load_fifo_a_size(), 4);
}

TEST_F(EisExtensionTest, LdPNonPartialWaitsForEmptyWindow) {
  // Fill the window, consume one element via SOP against a drained B,
  // then try to reload: without partial loading the ragged window is
  // not refilled.
  auto stats = RunOps({1, 2, 3, 4, 5, 6, 7, 8}, {1}, SopMode::kIntersect,
                      /*partial=*/false,
                      {{op::kLd0, 0},
                       {op::kLd1, 0},
                       {op::kLdP0, 0},
                       {op::kLdP1, 0},
                       {op::kSop, 0},
                       {op::kLd0, 0},
                       {op::kLdP0, 0}});
  ASSERT_TRUE(stats.ok());
  // SOP consumed a=1 (match) and left 2,3,4: window stays ragged.
  EXPECT_EQ(ext_.word_a().count, 3);
  EXPECT_EQ(ext_.word_a().lanes[0], 2u);
}

TEST_F(EisExtensionTest, SopPushesResultFifoAndUpdatesFlag) {
  auto stats = RunOps({1, 2, 3, 4}, {2, 4, 6, 8}, SopMode::kIntersect, true,
                      {{op::kLd0, 0},
                       {op::kLd1, 0},
                       {op::kLdP0, 0},
                       {op::kLdP1, 0},
                       {op::kSop, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.result_fifo_size(), 2);  // 2 and 4
  EXPECT_EQ(ext_.counters().sop_executions, 1u);
  EXPECT_EQ(ext_.counters().matches, 2u);
  // A fully consumed and stream empty -> intersection can stop.
  EXPECT_FALSE(ext_.active_flag());
}

TEST_F(EisExtensionTest, StSNeedsFourResults) {
  // Only 2 results in the FIFO: the shuffle does not move them yet.
  auto stats = RunOps({1, 2, 3, 4}, {2, 4, 6, 8}, SopMode::kIntersect, true,
                      {{op::kLd0, 0},
                       {op::kLd1, 0},
                       {op::kLdP0, 0},
                       {op::kLdP1, 0},
                       {op::kSop, 0},
                       {op::kStS, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.store_buffer_size(), 0);
  EXPECT_EQ(ext_.result_fifo_size(), 2);
}

TEST_F(EisExtensionTest, StDelayedUntilFourElements) {
  // Table 1: "The store instruction is delayed in the case of three or
  // less available elements."
  auto stats = RunOps({1, 2, 3, 4}, {2, 4, 6, 8}, SopMode::kIntersect, true,
                      {{op::kLd0, 0},
                       {op::kLd1, 0},
                       {op::kLdP0, 0},
                       {op::kLdP1, 0},
                       {op::kSop, 0},
                       {op::kStS, 0},
                       {op::kSt, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.result_count(), 0u);
  EXPECT_EQ(ext_.counters().store_beats, 0u);
}

TEST_F(EisExtensionTest, StWritesFullPackThroughLsu1) {
  auto stats = RunOps({1, 2, 3, 4}, {1, 2, 3, 4}, SopMode::kIntersect, true,
                      {{op::kLd0, 0},
                       {op::kLd1, 0},
                       {op::kLdP0, 0},
                       {op::kLdP1, 0},
                       {op::kSop, 0},
                       {op::kStS, 0},
                       {op::kSt, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.result_count(), 4u);
  EXPECT_EQ(*mem_c_.ReadBlock(kMemCBase, 4),
            (std::vector<uint32_t>{1, 2, 3, 4}));
  EXPECT_EQ(ext_.counters().store_beats, 1u);
}

TEST_F(EisExtensionTest, FlushDrainsPartialPackAndWritesCount) {
  auto stats = RunOps({1, 2, 3, 4}, {2, 4, 6, 8}, SopMode::kIntersect, true,
                      {{op::kLd0, 0},
                       {op::kLd1, 0},
                       {op::kLdP0, 0},
                       {op::kLdP1, 0},
                       {op::kSop, 0},
                       {op::kFlush, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.result_count(), 2u);
  EXPECT_EQ(cpu_.reg(isa::abi::kLenC), 2u);
  EXPECT_EQ(*mem_c_.ReadBlock(kMemCBase, 2), (std::vector<uint32_t>{2, 4}));
}

TEST_F(EisExtensionTest, FusedStoreSopWritesFlagRegister) {
  auto stats = RunOps({1, 2, 3, 4}, {9, 10, 11, 12}, SopMode::kIntersect,
                      true,
                      {{op::kLdLdpShuffle, 0}, {op::kStoreSop, 6}});
  ASSERT_TRUE(stats.ok());
  // A's window was consumed but its stream is done; B still has data:
  // intersection requires both -> flag 0.
  EXPECT_EQ(cpu_.reg(Reg::a6), 0u);
}

TEST_F(EisExtensionTest, FusedLdLdpShuffleLoadsBothSidesInOneCycle) {
  auto stats = RunOps({1, 2, 3, 4}, {5, 6, 7, 8}, SopMode::kIntersect, true,
                      {{op::kLdLdpShuffle, 0}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(ext_.word_a().count, 4);
  EXPECT_EQ(ext_.word_b().count, 4);
  // Two beats on different LSUs: no port stall.
  EXPECT_EQ(stats->port_stall_cycles, 0u);
  EXPECT_EQ(stats->lsu_beats[0], 1u);
  EXPECT_EQ(stats->lsu_beats[1], 1u);
}

TEST_F(EisExtensionTest, SortBeatSortsAndStores) {
  auto stats = RunOps({4, 1, 3, 2, 8, 7, 6, 5}, {}, SopMode::kMerge, true,
                      {{op::kSortBeat, 6}, {op::kSortBeat, 6}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(*mem_c_.ReadBlock(kMemCBase, 8),
            (std::vector<uint32_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(cpu_.reg(Reg::a6), 0u);  // stream exhausted
  // In merge mode both beats go through LSU0: load + store serialize.
  EXPECT_GT(stats->port_stall_cycles, 0u);
}

TEST_F(EisExtensionTest, SortBeatPadsTailWithMax) {
  auto stats = RunOps({30, 10}, {}, SopMode::kMerge, true,
                      {{op::kSortBeat, 6}});
  ASSERT_TRUE(stats.ok());
  auto out = *mem_c_.ReadBlock(kMemCBase, 4);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 30u);
  EXPECT_EQ(out[2], 0xFFFFFFFFu);  // padding sinks to the run tail
  EXPECT_EQ(ext_.result_count(), 2u);
}

TEST_F(EisExtensionTest, CopyBeatCopiesAndFlags) {
  auto stats = RunOps({5, 6, 7, 8, 9}, {}, SopMode::kMerge, true,
                      {{op::kCopyBeat, 6}, {op::kCopyBeat, 6}});
  ASSERT_TRUE(stats.ok());
  auto out = *mem_c_.ReadBlock(kMemCBase, 5);
  EXPECT_EQ(out, (std::vector<uint32_t>{5, 6, 7, 8, 9}));
  EXPECT_EQ(cpu_.reg(Reg::a6), 0u);
}

TEST_F(EisExtensionTest, InitResetsDatapathButKeepsCounters) {
  auto stats = RunOps({1, 2, 3, 4}, {1, 2, 3, 4}, SopMode::kIntersect, true,
                      {{op::kLdLdpShuffle, 0},
                       {op::kStoreSop, 6},
                       {op::kInit, MakeInitOperand(SopMode::kUnion, false)}});
  ASSERT_TRUE(stats.ok());
  // Counters aggregate across INITs within one run (the sort kernel
  // INITs once per merge pair)...
  EXPECT_EQ(ext_.counters().sop_executions, 1u);
  // ...while the datapath and configuration states are re-initialized.
  EXPECT_EQ(ext_.result_fifo_size(), 0);
  EXPECT_EQ(ext_.word_a().count, 0);
  EXPECT_EQ(ext_.mode(), SopMode::kUnion);
  EXPECT_FALSE(ext_.partial_loading());
}

TEST_F(EisExtensionTest, ResetStateClearsCounters) {
  auto stats = RunOps({1, 2, 3, 4}, {1, 2, 3, 4}, SopMode::kIntersect, true,
                      {{op::kLdLdpShuffle, 0}, {op::kStoreSop, 6}});
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(ext_.counters().sop_executions, 0u);
  ext_.ResetState();
  EXPECT_EQ(ext_.counters().sop_executions, 0u);
}

TEST_F(EisExtensionTest, FlushWithFullStoreStatesAndPendingResults) {
  // Regression (found by the datapath fuzzer): FLUSH with the Store
  // states already holding a full pack AND more results waiting in the
  // FIFO must drain both, in order. Union of disjoint windows produces
  // 4 results per SOP; two SOPs + one ST_S leave Store full and the
  // FIFO nonempty.
  auto stats = RunOps({1, 2, 3, 4, 9, 10, 11, 12}, {5, 6, 7, 8},
                      SopMode::kUnion, true,
                      {{op::kLd0, 0},
                       {op::kLd1, 0},
                       {op::kLdP0, 0},
                       {op::kLdP1, 0},
                       {op::kSop, 0},
                       {op::kLd0, 0},
                       {op::kLdP0, 0},
                       {op::kSop, 0},
                       {op::kStS, 0},
                       {op::kSop, 0},
                       {op::kFlush, 0}});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(ext_.result_count(), 12u);
  EXPECT_EQ(*mem_c_.ReadBlock(kMemCBase, 12),
            (std::vector<uint32_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
}

TEST_F(EisExtensionTest, EisRequiresWideBus) {
  // On a 32-bit data bus (108Mini-like) the extension's beats fail.
  sim::CoreConfig narrow;
  narrow.instruction_bus_bits = 64;
  narrow.data_bus_bits = 32;
  sim::Cpu cpu(narrow);
  ASSERT_TRUE(cpu.AttachMemory(&mem_a_).ok());
  EisExtension ext;
  ASSERT_TRUE(ext.Attach(&cpu).ok());
  Assembler masm;
  masm.Tie(op::kInit, 0);
  masm.Tie(op::kLd0, 0);
  masm.Halt();
  auto program = masm.Finish();
  ASSERT_TRUE(program.ok());
  program_ = *std::move(program);
  cpu.set_reg(isa::abi::kPtrA, kMemABase);
  cpu.set_reg(isa::abi::kLenA, 4);
  ASSERT_TRUE(cpu.LoadProgram(program_).ok());
  EXPECT_EQ(cpu.Run().status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dba::eis
