// Kernel-program tests through the public Processor API: small and
// adversarial inputs on scalar and EIS configurations.

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/scalar_baseline.h"
#include "core/processor.h"
#include "core/workload.h"
#include "dbkern/eis_kernels.h"
#include "dbkern/scalar_kernels.h"

namespace dba {
namespace {

std::unique_ptr<Processor> Make(ProcessorKind kind,
                                ProcessorOptions options = {}) {
  auto processor = Processor::Create(kind, options);
  EXPECT_TRUE(processor.ok()) << processor.status();
  return *std::move(processor);
}

std::vector<uint32_t> RunOp(Processor& processor, SetOp op,
                            const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b,
                            RunSettings settings = {}) {
  auto run = processor.RunSetOperation(op, a, b, settings);
  EXPECT_TRUE(run.ok()) << run.status();
  return run.ok() ? run->result : std::vector<uint32_t>{};
}

TEST(KernelBuilderTest, ScalarMergeModeRejected) {
  EXPECT_FALSE(dbkern::BuildScalarSetOp(eis::SopMode::kMerge).ok());
}

TEST(KernelBuilderTest, EisMergeModeRejected) {
  EXPECT_FALSE(dbkern::BuildEisSetOp(eis::SopMode::kMerge, true).ok());
}

TEST(KernelBuilderTest, UnrollRangeValidated) {
  EXPECT_FALSE(dbkern::BuildEisSetOp(eis::SopMode::kIntersect, true, 0).ok());
  EXPECT_FALSE(
      dbkern::BuildEisSetOp(eis::SopMode::kIntersect, true, 1000).ok());
  EXPECT_TRUE(dbkern::BuildEisSetOp(eis::SopMode::kIntersect, true, 1).ok());
}

TEST(KernelBuilderTest, ProgramsAssemble) {
  EXPECT_TRUE(dbkern::BuildScalarMergeSort().ok());
  EXPECT_TRUE(dbkern::BuildEisMergeSort().ok());
  for (auto mode : {eis::SopMode::kIntersect, eis::SopMode::kUnion,
                    eis::SopMode::kDifference}) {
    EXPECT_TRUE(dbkern::BuildScalarSetOp(mode).ok());
    EXPECT_TRUE(dbkern::BuildEisSetOp(mode, false).ok());
    EXPECT_TRUE(dbkern::BuildEisSetOp(mode, true).ok());
  }
}

class KernelEdgeCaseTest : public ::testing::TestWithParam<ProcessorKind> {};

TEST_P(KernelEdgeCaseTest, EmptyInputs) {
  auto processor = Make(GetParam());
  EXPECT_TRUE(RunOp(*processor, SetOp::kIntersect, {}, {}).empty());
  EXPECT_TRUE(RunOp(*processor, SetOp::kIntersect, {1, 2}, {}).empty());
  EXPECT_TRUE(RunOp(*processor, SetOp::kIntersect, {}, {1, 2}).empty());
  EXPECT_EQ(RunOp(*processor, SetOp::kUnion, {1, 2}, {}),
            (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(RunOp(*processor, SetOp::kUnion, {}, {3}),
            (std::vector<uint32_t>{3}));
  EXPECT_EQ(RunOp(*processor, SetOp::kDifference, {1, 2}, {}),
            (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(RunOp(*processor, SetOp::kDifference, {}, {1}).empty());
}

TEST_P(KernelEdgeCaseTest, SingleElements) {
  auto processor = Make(GetParam());
  EXPECT_EQ(RunOp(*processor, SetOp::kIntersect, {7}, {7}),
            (std::vector<uint32_t>{7}));
  EXPECT_TRUE(RunOp(*processor, SetOp::kIntersect, {7}, {8}).empty());
  EXPECT_EQ(RunOp(*processor, SetOp::kUnion, {7}, {8}),
            (std::vector<uint32_t>{7, 8}));
  EXPECT_EQ(RunOp(*processor, SetOp::kDifference, {7}, {7}),
            (std::vector<uint32_t>{}));
}

TEST_P(KernelEdgeCaseTest, IdenticalSets) {
  auto processor = Make(GetParam());
  const std::vector<uint32_t> values = {1, 5, 9, 13, 17, 21, 25};
  EXPECT_EQ(RunOp(*processor, SetOp::kIntersect, values, values), values);
  EXPECT_EQ(RunOp(*processor, SetOp::kUnion, values, values), values);
  EXPECT_TRUE(RunOp(*processor, SetOp::kDifference, values, values).empty());
}

TEST_P(KernelEdgeCaseTest, FullyDisjointInterleaved) {
  auto processor = Make(GetParam());
  std::vector<uint32_t> odd;
  std::vector<uint32_t> even;
  for (uint32_t i = 0; i < 50; ++i) {
    even.push_back(2 * i);
    odd.push_back(2 * i + 1);
  }
  EXPECT_TRUE(RunOp(*processor, SetOp::kIntersect, even, odd).empty());
  EXPECT_EQ(RunOp(*processor, SetOp::kUnion, even, odd).size(), 100u);
  EXPECT_EQ(RunOp(*processor, SetOp::kDifference, even, odd), even);
}

TEST_P(KernelEdgeCaseTest, DisjointRanges) {
  auto processor = Make(GetParam());
  std::vector<uint32_t> low;
  std::vector<uint32_t> high;
  for (uint32_t i = 0; i < 40; ++i) {
    low.push_back(i);
    high.push_back(1000 + i);
  }
  EXPECT_TRUE(RunOp(*processor, SetOp::kIntersect, low, high).empty());
  EXPECT_EQ(RunOp(*processor, SetOp::kUnion, low, high).size(), 80u);
  EXPECT_EQ(RunOp(*processor, SetOp::kDifference, high, low), high);
}

TEST_P(KernelEdgeCaseTest, VeryAsymmetricSizes) {
  auto processor = Make(GetParam());
  std::vector<uint32_t> big;
  for (uint32_t i = 0; i < 300; ++i) big.push_back(3 * i);
  const std::vector<uint32_t> small = {3, 299 * 3, 1000000};
  EXPECT_EQ(RunOp(*processor, SetOp::kIntersect, big, small),
            (std::vector<uint32_t>{3, 299 * 3}));
  EXPECT_EQ(RunOp(*processor, SetOp::kIntersect, small, big),
            (std::vector<uint32_t>{3, 299 * 3}));
}

TEST_P(KernelEdgeCaseTest, SortEdgeSizes) {
  auto processor = Make(GetParam());
  for (uint32_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 63u,
                     64u, 100u}) {
    std::vector<uint32_t> values = GenerateSortInput(n, n);
    auto run = processor->RunSort(values);
    ASSERT_TRUE(run.ok()) << "n=" << n << ": " << run.status();
    std::vector<uint32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(run->sorted, expected) << "n=" << n;
  }
}

TEST_P(KernelEdgeCaseTest, SortAdversarialPatterns) {
  auto processor = Make(GetParam());
  std::vector<std::vector<uint32_t>> inputs;
  std::vector<uint32_t> ascending;
  std::vector<uint32_t> descending;
  std::vector<uint32_t> constant(77, 42);
  std::vector<uint32_t> sawtooth;
  for (uint32_t i = 0; i < 77; ++i) {
    ascending.push_back(i);
    descending.push_back(1000 - i);
    sawtooth.push_back(i % 8);
  }
  inputs = {ascending, descending, constant, sawtooth};
  for (const auto& values : inputs) {
    auto run = processor->RunSort(values);
    ASSERT_TRUE(run.ok()) << run.status();
    std::vector<uint32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(run->sorted, expected);
  }
}

TEST_P(KernelEdgeCaseTest, ExtremeValues) {
  auto processor = Make(GetParam());
  const std::vector<uint32_t> a = {0, 1, 0x7FFFFFFF, 0xFFFFFFFE, 0xFFFFFFFF};
  const std::vector<uint32_t> b = {0, 0x7FFFFFFF, 0xFFFFFFFF};
  EXPECT_EQ(RunOp(*processor, SetOp::kIntersect, a, b), b);
  EXPECT_EQ(RunOp(*processor, SetOp::kUnion, a, b), a);
  EXPECT_EQ(RunOp(*processor, SetOp::kDifference, a, b),
            (std::vector<uint32_t>{1, 0xFFFFFFFE}));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, KernelEdgeCaseTest,
    ::testing::Values(ProcessorKind::k108Mini, ProcessorKind::kDba1Lsu,
                      ProcessorKind::kDba1LsuEis, ProcessorKind::kDba2LsuEis),
    [](const ::testing::TestParamInfo<ProcessorKind>& param_info) {
      return std::string(hwmodel::ConfigKindName(param_info.param));
    });

TEST(KernelValidationTest, RejectsUnsortedInput) {
  auto processor = Make(ProcessorKind::kDba2LsuEis);
  RunSettings settings;
  settings.validate_inputs = true;
  auto run = processor->RunSetOperation(SetOp::kIntersect, {{3u, 1u, 2u}},
                                        {{1u, 2u}}, settings);
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(KernelValidationTest, RejectsDuplicates) {
  auto processor = Make(ProcessorKind::kDba2LsuEis);
  RunSettings settings;
  settings.validate_inputs = true;
  auto run = processor->RunSetOperation(SetOp::kIntersect, {{1u, 1u, 2u}},
                                        {{1u, 2u}}, settings);
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(KernelValidationTest, ValidationIsOptIn) {
  // Without validate_inputs the kernel trusts its caller (the default,
  // so the fault-free path pays nothing): duplicate keys violate the
  // set contract but run through the datapath without an error.
  auto processor = Make(ProcessorKind::kDba2LsuEis);
  auto run = processor->RunSetOperation(SetOp::kIntersect, {{1u, 1u, 2u}},
                                        {{1u, 2u}});
  EXPECT_TRUE(run.ok()) << run.status();
}

TEST(KernelValidationTest, RejectsMergeAsSetOp) {
  auto processor = Make(ProcessorKind::kDba2LsuEis);
  auto run = processor->RunSetOperation(SetOp::kMerge, {{1u}}, {{2u}});
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(KernelValidationTest, CapacityEnforced) {
  auto processor = Make(ProcessorKind::kDba2LsuEis);
  const uint32_t too_big = processor->max_set_elements(0) + 1;
  std::vector<uint32_t> a(too_big);
  for (uint32_t i = 0; i < too_big; ++i) a[i] = i;
  auto run = processor->RunSetOperation(SetOp::kIntersect, a, {{1u}});
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  std::vector<uint32_t> sort_input(processor->max_sort_elements() + 1, 1);
  EXPECT_EQ(processor->RunSort(sort_input).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(KernelForceScalarTest, EisKindRunsScalarKernel) {
  auto processor = Make(ProcessorKind::kDba2LsuEis);
  auto pair = GenerateSetPair(500, 500, 0.3, 11);
  ASSERT_TRUE(pair.ok());
  auto eis_run =
      processor->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  auto scalar_run = processor->RunSetOperation(
      SetOp::kIntersect, pair->a, pair->b, {.force_scalar = true});
  ASSERT_TRUE(eis_run.ok());
  ASSERT_TRUE(scalar_run.ok());
  EXPECT_EQ(eis_run->result, scalar_run->result);
  // The extension is an order of magnitude faster on the same core.
  EXPECT_LT(eis_run->metrics.cycles * 5, scalar_run->metrics.cycles);
}

TEST(KernelUnrollTest, UnrollReducesCycles) {
  auto pair = GenerateSetPair(2000, 2000, 0.5, 3);
  ASSERT_TRUE(pair.ok());
  ProcessorOptions unrolled;
  unrolled.unroll = 32;
  ProcessorOptions rolled;
  rolled.unroll = 1;
  auto fast = Make(ProcessorKind::kDba2LsuEis, unrolled);
  auto slow = Make(ProcessorKind::kDba2LsuEis, rolled);
  auto fast_run = fast->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  auto slow_run = slow->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  ASSERT_TRUE(fast_run.ok());
  ASSERT_TRUE(slow_run.ok());
  EXPECT_EQ(fast_run->result, slow_run->result);
  EXPECT_LT(fast_run->metrics.cycles, slow_run->metrics.cycles);
}

}  // namespace
}  // namespace dba
