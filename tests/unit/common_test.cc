#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace dba {
namespace {

// --- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 9; ++code) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::NotFound("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::Ok();
}

Status Propagates(int x) {
  DBA_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::AlreadyExists("reached end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Propagates(1).code(), StatusCode::kAlreadyExists);
}

// --- Result ---

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = ParsePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ParsePositive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

Result<int> UsesAssignOrReturn(int x) {
  DBA_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*UsesAssignOrReturn(5), 11);
  EXPECT_EQ(UsesAssignOrReturn(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = *std::move(result);
  EXPECT_EQ(*owned, 7);
}

// --- Random ---

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next64() == b.Next64();
  EXPECT_LT(equal, 2);
}

TEST(RandomTest, UniformStaysInBound) {
  Random rng(99);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Uniform(bound), bound);
  }
}

TEST(RandomTest, UniformCoversSmallRange) {
  Random rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// --- Bits ---

TEST(BitsTest, ExtractInsertRoundTrip) {
  const uint64_t word = 0xDEADBEEFCAFEF00Dull;
  for (int pos : {0, 5, 20, 40}) {
    for (int width : {1, 4, 12, 24}) {
      const uint64_t field = ExtractBits(word, pos, width);
      EXPECT_EQ(ExtractBits(InsertBits(0, pos, width, field), pos, width),
                field);
    }
  }
}

TEST(BitsTest, InsertMasksField) {
  EXPECT_EQ(InsertBits(0, 4, 4, 0xFF), 0xF0u);
}

TEST(BitsTest, SignExtend) {
  EXPECT_EQ(SignExtend(0x7FF, 12), 2047);
  EXPECT_EQ(SignExtend(0x800, 12), -2048);
  EXPECT_EQ(SignExtend(0xFFF, 12), -1);
  EXPECT_EQ(SignExtend(0, 12), 0);
  EXPECT_EQ(SignExtend(0x80, 8), -128);
}

TEST(BitsTest, Alignment) {
  EXPECT_TRUE(IsAligned(32, 16));
  EXPECT_FALSE(IsAligned(33, 16));
  EXPECT_EQ(AlignDown(33, 16), 32u);
  EXPECT_EQ(AlignUp(33, 16), 48u);
  EXPECT_EQ(AlignUp(32, 16), 32u);
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(65));
  EXPECT_FALSE(IsPowerOfTwo(0));
}

// --- ThreadPool ---

TEST(ThreadPoolTest, ClampsToOneWorker) {
  common::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_GE(common::ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, RunExecutesTasksBeforeDestruction) {
  std::atomic<int> counter{0};
  {
    // The destructor drains the queue before joining the workers.
    common::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Run([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  for (const size_t n : {0u, 1u, 3u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, ParallelForResultsAreOrderedBySlot) {
  common::ThreadPool pool(3);
  std::vector<size_t> out(257, 0);
  pool.ParallelFor(out.size(), [&out](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ParallelForMoreTasksThanWorkers) {
  common::ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(500, [&sum](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 500u * 501u / 2);
}

}  // namespace
}  // namespace dba
